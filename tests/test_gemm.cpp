#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/rng.hpp"

namespace frlfi {
namespace {

std::vector<float> random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  std::vector<float> m(rows * cols);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

// Textbook triple loop, the semantic reference for every kernel.
std::vector<float> reference_product(const std::vector<float>& a,
                                     const std::vector<float>& b,
                                     std::size_t m, std::size_t k,
                                     std::size_t n) {
  std::vector<float> c(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t j = 0; j < n; ++j)
        c[i * n + j] += a[i * k + p] * b[p * n + j];
  return c;
}

void expect_near(const std::vector<float>& got, const std::vector<float>& want,
                 float tol = 1e-5f) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], want[i], tol) << "element " << i;
}

TEST(Gemm, MatchesReferenceAcrossSizes) {
  Rng rng(7);
  // Sizes straddle the blocking thresholds (64/256/512) in both directions.
  const std::size_t cases[][3] = {{1, 1, 1},   {3, 5, 7},    {17, 33, 9},
                                  {64, 64, 64}, {65, 257, 513}, {2, 300, 600}};
  for (const auto& c : cases) {
    const std::size_t m = c[0], k = c[1], n = c[2];
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<float> got(m * n, 42.0f);  // gemm must overwrite
    gemm(a.data(), b.data(), got.data(), m, k, n);
    expect_near(got, reference_product(a, b, m, k, n));
  }
}

TEST(Gemm, AccumulateAddsOnTop) {
  Rng rng(8);
  const std::size_t m = 6, k = 11, n = 13;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c(m * n, 1.0f);
  gemm_accumulate(a.data(), b.data(), c.data(), m, k, n);
  auto want = reference_product(a, b, m, k, n);
  for (auto& v : want) v += 1.0f;
  expect_near(c, want);
}

TEST(Gemm, BiasRowsSeedsAndOverwrites) {
  Rng rng(13);
  // One wide case (ordered saxpy path) and one narrow case (packed dots).
  const std::size_t cases[][3] = {{6, 48, 50}, {16, 48, 3}};
  for (const auto& d : cases) {
    const std::size_t m = d[0], k = d[1], n = d[2];
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    const auto bias = random_matrix(m, 1, rng);
    std::vector<float> got(m * n, -9.0f);  // must be overwritten
    gemm_bias_rows(a.data(), b.data(), bias.data(), got.data(), m, k, n);
    auto want = reference_product(a, b, m, k, n);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) want[i * n + j] += bias[i];
    expect_near(got, want);
  }
}

TEST(Gemm, NtAccumulateMatchesTransposedReference) {
  Rng rng(9);
  // Cases straddle the narrow-k packed path (k < 8): {16,3,48} is the
  // degenerate 12x2x4 drone conv2 weight-gradient shape that motivated it.
  const std::size_t cases[][3] = {
      {5, 19, 8}, {16, 3, 48}, {16, 8, 48}, {3, 2, 5}, {1, 7, 64}};
  for (const auto& d : cases) {
    const std::size_t m = d[0], k = d[1], n = d[2];
    const auto a = random_matrix(m, k, rng);
    const auto bt = random_matrix(n, k, rng);  // B stored transposed (n x k)
    std::vector<float> b(k * n);
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t j = 0; j < n; ++j) b[p * n + j] = bt[j * k + p];
    std::vector<float> c(m * n, 0.5f);  // accumulate on top
    gemm_nt_accumulate(a.data(), bt.data(), c.data(), m, k, n);
    auto want = reference_product(a, b, m, k, n);
    for (auto& v : want) v += 0.5f;
    expect_near(c, want);
  }
}

TEST(Gemm, TnMatchesTransposedReference) {
  Rng rng(10);
  // Cases straddle the narrow-n packed path (n < 8): {48,16,3} is the
  // degenerate 12x2x4 drone conv2 input-gradient shape that motivated it.
  const std::size_t cases[][3] = {
      {9, 7, 12}, {48, 16, 3}, {48, 16, 8}, {4, 3, 2}, {64, 9, 1}};
  for (const auto& d : cases) {
    const std::size_t m = d[0], k = d[1], n = d[2];
    const auto at = random_matrix(k, m, rng);  // A stored transposed (k x m)
    const auto b = random_matrix(k, n, rng);
    std::vector<float> a(m * k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p) a[i * k + p] = at[p * m + i];
    std::vector<float> c(m * n, -3.0f);  // gemm_tn overwrites
    gemm_tn(at.data(), b.data(), c.data(), m, k, n);
    expect_near(c, reference_product(a, b, m, k, n));
  }
}

TEST(Gemm, ZeroSkipMatchesDenseOnSparseInput) {
  Rng rng(11);
  const std::size_t m = 8, k = 40, n = 10;
  auto a = random_matrix(m, k, rng);
  for (auto& v : a)
    if (rng.uniform() < 0.9) v = 0.0f;  // fault-masked style sparsity
  const auto b = random_matrix(k, n, rng);
  std::vector<float> dense(m * n, 0.0f), sparse(m * n, 0.0f);
  gemm_accumulate(a.data(), b.data(), dense.data(), m, k, n);
  gemm_zero_skip_accumulate(a.data(), b.data(), sparse.data(), m, k, n);
  expect_near(sparse, dense);
}

TEST(Gemm, GemvVariants) {
  Rng rng(12);
  const std::size_t m = 14, n = 23;
  const auto w = random_matrix(m, n, rng);
  const auto x = random_matrix(n, 1, rng);
  const auto bias = random_matrix(m, 1, rng);
  std::vector<float> want(m, 0.0f);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) want[i] += w[i * n + j] * x[j];

  std::vector<float> y(m, 5.0f);
  gemv(w.data(), x.data(), y.data(), m, n);
  expect_near(y, want);

  std::vector<float> yb(m, 0.0f);
  gemv_bias(w.data(), x.data(), bias.data(), yb.data(), m, n);
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(yb[i], want[i] + bias[i], 1e-5f);

  // y2 += Wᵀ g
  const auto g = random_matrix(m, 1, rng);
  std::vector<float> y2(n, 0.5f), want2(n, 0.5f);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) want2[j] += w[i * n + j] * g[i];
  gemv_t_accumulate(w.data(), g.data(), y2.data(), m, n);
  expect_near(y2, want2);

  // A += g xᵀ
  std::vector<float> acc(m * n, 0.25f), want3(m * n, 0.25f);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) want3[i * n + j] += g[i] * x[j];
  ger_accumulate(g.data(), x.data(), acc.data(), m, n);
  expect_near(acc, want3);
}

}  // namespace
}  // namespace frlfi
