/// \file test_gemm_s8.cpp
/// Int8 kernel golden lock: the dispatched gemv_s8 / gemm_s8 (SIMD via the
/// runtime-clone machinery where available) must equal their scalar
/// reference implementations BIT-exactly for every shape — int32
/// accumulation is exact, so reassociation cannot change a single bit
/// (the justification of the R4 lint waivers in tensor/gemm_s8.cpp).

#include "tensor/gemm_s8.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "core/rng.hpp"

namespace frlfi {
namespace {

// Full-range words including -128 — the corruption-only value the clean
// quantizer never emits but the kernels must still handle exactly.
std::vector<std::int8_t> random_words(Rng& rng, std::size_t n) {
  std::vector<std::int8_t> v(n);
  for (auto& w : v)
    w = static_cast<std::int8_t>(static_cast<int>(rng.uniform_index(256)) -
                                 128);
  return v;
}

TEST(GemmS8, GemvMatchesReferenceBitExact) {
  Rng rng(123);
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {3, 5}, {25, 32}, {32, 48}, {17, 129}};
  for (const auto& [m, n] : shapes) {
    const auto w = random_words(rng, m * n);
    const auto x = random_words(rng, n);
    std::vector<std::int32_t> y(m, -1), yr(m, -2);
    gemv_s8(w.data(), x.data(), y.data(), m, n);
    gemv_s8_ref(w.data(), x.data(), yr.data(), m, n);
    EXPECT_EQ(y, yr) << m << "x" << n;
  }
}

TEST(GemmS8, GemmMatchesReferenceBitExact) {
  Rng rng(321);
  // n spans the packed narrow path (< 16 columns) and the wide saxpy path,
  // at the paper policies' k values (48 = drone FC1) and beyond.
  const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
      {1, 1, 1},  {4, 6, 3},   {16, 48, 7},
      {25, 48, 8}, {12, 54, 16}, {6, 16, 33}};
  for (const auto& [m, k, n] : shapes) {
    const auto a = random_words(rng, m * k);
    const auto b = random_words(rng, k * n);
    std::vector<std::int32_t> c(m * n, -1), cr(m * n, -2);
    gemm_s8(a.data(), b.data(), c.data(), m, k, n);
    gemm_s8_ref(a.data(), b.data(), cr.data(), m, k, n);
    EXPECT_EQ(c, cr) << m << "x" << k << "x" << n;
  }
}

TEST(GemmS8, GemmWidth1MatchesGemv) {
  // A one-column GEMM and a gemv over the same data are the same
  // reduction in exact integer arithmetic — no width tolerance anywhere.
  Rng rng(7);
  const std::size_t m = 25, k = 48;
  const auto w = random_words(rng, m * k);
  const auto x = random_words(rng, k);
  std::vector<std::int32_t> yv(m), yg(m);
  gemv_s8(w.data(), x.data(), yv.data(), m, k);
  gemm_s8(w.data(), x.data(), yg.data(), m, k, 1);
  EXPECT_EQ(yv, yg);
}

TEST(GemmS8, FullScaleCorruptionWordStaysExact) {
  // Worst-case magnitude: every operand word -128 (bit-7 corruption), so
  // every product is +16384 and the accumulator reaches k * 16384 — far
  // inside int32, per the overflow contract in gemm_s8.hpp.
  const std::size_t m = 4, k = 32, n = 9;
  const std::vector<std::int8_t> a(m * k, -128), b(k * n, -128);
  std::vector<std::int32_t> c(m * n), cr(m * n);
  gemm_s8(a.data(), b.data(), c.data(), m, k, n);
  gemm_s8_ref(a.data(), b.data(), cr.data(), m, k, n);
  EXPECT_EQ(c, cr);
  for (const std::int32_t v : c)
    EXPECT_EQ(v, static_cast<std::int32_t>(k) * 16384);
}

}  // namespace
}  // namespace frlfi
