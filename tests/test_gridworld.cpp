#include "envs/gridworld.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(GridLayout, DefaultIsFreeAndSolvable) {
  GridLayout l;
  EXPECT_EQ(l.hell_count(), 0);
  EXPECT_TRUE(l.is_solvable());
  EXPECT_EQ(l.at(0, 0), Cell::Source);
  EXPECT_EQ(l.at(9, 9), Cell::Goal);
}

TEST(GridLayout, BoundaryReadsAsHell) {
  GridLayout l;
  EXPECT_EQ(l.at(-1, 0), Cell::Hell);
  EXPECT_EQ(l.at(0, 10), Cell::Hell);
}

TEST(GridLayout, SetRelocatesMarkers) {
  GridLayout l;
  l.set(5, 5, Cell::Source);
  EXPECT_EQ(l.source(), (GridPos{5, 5}));
  EXPECT_EQ(l.at(0, 0), Cell::Free);
  l.set(2, 3, Cell::Goal);
  EXPECT_EQ(l.goal(), (GridPos{2, 3}));
}

TEST(GridLayout, SetOutOfRangeThrows) {
  GridLayout l;
  EXPECT_THROW(l.set(10, 0, Cell::Hell), Error);
}

TEST(GridLayout, WalledOffGoalIsUnsolvable) {
  GridLayout l;
  l.set(0, 0, Cell::Source);
  l.set(9, 9, Cell::Goal);
  l.set(8, 9, Cell::Hell);
  l.set(8, 8, Cell::Hell);
  l.set(9, 8, Cell::Hell);
  EXPECT_FALSE(l.is_solvable());
}

TEST(GridLayout, RandomProducesRequestedObstacles) {
  Rng rng(1);
  const GridLayout l = GridLayout::random(rng, 7);
  EXPECT_EQ(l.hell_count(), 7);
  EXPECT_TRUE(l.is_solvable());
  EXPECT_TRUE(l.reactively_solvable());
}

TEST(GridLayout, RandomObstaclesAreIsolated) {
  Rng rng(2);
  const GridLayout l = GridLayout::random(rng, 8);
  for (int r = 0; r < GridLayout::kSize; ++r) {
    for (int c = 0; c < GridLayout::kSize; ++c) {
      if (l.at(r, c) != Cell::Hell) continue;
      for (int dr = -1; dr <= 1; ++dr)
        for (int dc = -1; dc <= 1; ++dc) {
          if (!dr && !dc) continue;
          const int rr = r + dr, cc = c + dc;
          if (rr < 0 || rr >= GridLayout::kSize || cc < 0 ||
              cc >= GridLayout::kSize)
            continue;
          EXPECT_NE(l.at(rr, cc), Cell::Hell)
              << "adjacent hells at (" << r << "," << c << ")";
        }
    }
  }
}

TEST(GridLayout, PaperSuiteHasTwelveSolvableEnvs) {
  const auto suite = GridLayout::paper_suite();
  ASSERT_EQ(suite.size(), 12u);
  for (const auto& env : suite) {
    EXPECT_TRUE(env.is_solvable());
    EXPECT_TRUE(env.reactively_solvable());
    EXPECT_FALSE(env.source() == env.goal());
  }
}

TEST(GridLayout, PaperSuiteIsDeterministic) {
  const auto a = GridLayout::paper_suite();
  const auto b = GridLayout::paper_suite();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].source() == b[i].source());
    EXPECT_TRUE(a[i].goal() == b[i].goal());
    EXPECT_EQ(a[i].hell_count(), b[i].hell_count());
  }
}

TEST(GridLayout, PaperSuiteSharesMazesAcrossVariants) {
  // Environments 3k..3k+2 share maze k's obstacle field.
  const auto suite = GridLayout::paper_suite();
  for (int maze = 0; maze < 4; ++maze)
    EXPECT_EQ(suite[maze * 3].hell_count(), suite[maze * 3 + 1].hell_count());
}

GridWorldEnv::Options no_slip() {
  GridWorldEnv::Options o;
  o.slip_probability = 0.0;
  return o;
}

TEST(GridWorldEnv, ResetStartsAtSource) {
  GridLayout l;
  l.set(4, 4, Cell::Source);
  GridWorldEnv env(l, no_slip());
  Rng rng(1);
  env.reset(rng);
  EXPECT_EQ(env.position(), (GridPos{4, 4}));
}

TEST(GridWorldEnv, ObservationEncodesNeighboursAndGoalDirection) {
  GridLayout l;
  l.set(5, 5, Cell::Source);
  l.set(4, 5, Cell::Hell);  // up
  l.set(9, 9, Cell::Goal);  // down-right of agent
  GridWorldEnv env(l, no_slip());
  Rng rng(1);
  const Tensor obs = env.reset(rng);
  ASSERT_EQ(obs.size(), GridWorldEnv::kObservationSize);
  EXPECT_FLOAT_EQ(obs[0], -1.0f);  // up = hell
  EXPECT_FLOAT_EQ(obs[1], 0.0f);   // down free
  EXPECT_FLOAT_EQ(obs[8], 1.0f);   // goal is below
  EXPECT_FLOAT_EQ(obs[9], 1.0f);   // goal is to the right
}

TEST(GridWorldEnv, GoalVisibleInObservation) {
  GridLayout l;
  l.set(5, 5, Cell::Source);
  l.set(5, 6, Cell::Goal);  // right
  GridWorldEnv env(l, no_slip());
  Rng rng(1);
  const Tensor obs = env.reset(rng);
  EXPECT_FLOAT_EQ(obs[2], 1.0f);
}

TEST(GridWorldEnv, StepRewardsMatchPaper) {
  GridLayout l;
  l.set(5, 5, Cell::Source);
  l.set(0, 0, Cell::Goal);
  GridWorldEnv env(l, no_slip());
  Rng rng(1);
  env.reset(rng);
  // Moving up (toward goal): +0.1.
  EXPECT_FLOAT_EQ(env.step(0, rng).reward, 0.1f);
  // Moving down (away): -0.1.
  EXPECT_FLOAT_EQ(env.step(1, rng).reward, -0.1f);
}

TEST(GridWorldEnv, CrashIntoHellEndsEpisode) {
  GridLayout l;
  l.set(5, 5, Cell::Source);
  l.set(4, 5, Cell::Hell);
  GridWorldEnv env(l, no_slip());
  Rng rng(1);
  env.reset(rng);
  const StepResult r = env.step(0, rng);  // up into hell
  EXPECT_FLOAT_EQ(r.reward, -1.0f);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.success);
  EXPECT_THROW(env.step(0, rng), Error);  // stepping after done
}

TEST(GridWorldEnv, ReachingGoalSucceeds) {
  GridLayout l;
  l.set(5, 5, Cell::Source);
  l.set(5, 6, Cell::Goal);
  GridWorldEnv env(l, no_slip());
  Rng rng(1);
  env.reset(rng);
  const StepResult r = env.step(2, rng);  // right into goal
  EXPECT_FLOAT_EQ(r.reward, 1.0f);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.success);
}

TEST(GridWorldEnv, BoundaryAbsorbsMove) {
  GridLayout l;
  l.set(0, 5, Cell::Source);
  l.set(9, 5, Cell::Goal);
  GridWorldEnv env(l, no_slip());
  Rng rng(1);
  env.reset(rng);
  const StepResult r = env.step(0, rng);  // up into the wall
  EXPECT_FALSE(r.done);
  EXPECT_FLOAT_EQ(r.reward, -0.1f);
  EXPECT_EQ(env.position(), (GridPos{0, 5}));
}

TEST(GridWorldEnv, StepCapTerminatesAsFailure) {
  GridLayout l;
  l.set(0, 0, Cell::Source);
  l.set(9, 9, Cell::Goal);
  GridWorldEnv::Options o = no_slip();
  o.max_steps = 3;
  GridWorldEnv env(l, o);
  Rng rng(1);
  env.reset(rng);
  env.step(0, rng);  // bump the wall three times
  env.step(0, rng);
  const StepResult r = env.step(0, rng);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.success);
}

TEST(GridWorldEnv, DeterministicWithoutSlip) {
  const auto suite = GridLayout::paper_suite();
  GridWorldEnv a(suite[0], no_slip()), b(suite[0], no_slip());
  Rng ra(5), rb(5);
  a.reset(ra);
  b.reset(rb);
  for (int t = 0; t < 20; ++t) {
    const StepResult sa = a.step(t % 4, ra);
    const StepResult sb = b.step(t % 4, rb);
    EXPECT_TRUE(sa.observation.equals(sb.observation));
    if (sa.done) break;
  }
}

TEST(GridWorldEnv, UnsolvableLayoutRejected) {
  GridLayout l;
  l.set(0, 0, Cell::Source);
  l.set(9, 9, Cell::Goal);
  l.set(8, 9, Cell::Hell);
  l.set(8, 8, Cell::Hell);
  l.set(9, 8, Cell::Hell);
  EXPECT_THROW(GridWorldEnv(l, no_slip()), Error);
}

TEST(GridWorldEnv, InvalidActionThrows) {
  GridWorldEnv env(GridLayout{}, no_slip());
  Rng rng(1);
  env.reset(rng);
  EXPECT_THROW(env.step(4, rng), Error);
}

/// Property: the reference reactive bot succeeds in every paper-suite
/// environment under every tie-break order.
class ReactiveBotProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReactiveBotProperty, SolvesAllSuiteEnvs) {
  const int order = GetParam();
  for (const auto& env : GridLayout::paper_suite())
    EXPECT_TRUE(env.reactive_bot_solves(order));
}

INSTANTIATE_TEST_SUITE_P(TieBreakOrders, ReactiveBotProperty,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace frlfi
