// Fixture suite for tools/frlfi_lint: drives the built binary over
// tests/lint_fixtures/ and over src/ itself, pinning exit codes, rule
// ids, finding counts, and the allow() suppression mechanism. The
// fixtures are the linter's golden references — every rule R1-R4 is
// demonstrated by at least one failing file and one suppressed file,
// plus clean counterparts full of look-alikes that must stay silent.
//
// Paths come from CMake: FRLFI_LINT_BIN (the frlfi_lint executable),
// FRLFI_LINT_FIXTURES (tests/lint_fixtures), FRLFI_LINT_SRC (src/).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;  // stdout only

  std::size_t count(const std::string& needle) const {
    std::size_t n = 0, pos = 0;
    while ((pos = output.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  }
  // Active findings for a rule: "RN:" occurrences minus suppressed ones
  // ("RN (suppressed):").
  std::size_t active(const std::string& rule) const {
    return count(rule + ":") ;
  }
  std::size_t suppressed(const std::string& rule) const {
    return count(rule + " (suppressed):");
  }
};

LintResult run_lint(const std::string& args) {
  // Findings and the summary go to stdout; stderr (usage/IO errors) is
  // folded in so failures stay diagnosable from the test log.
  const std::string cmd = std::string(FRLFI_LINT_BIN) + " " + args + " 2>&1";
  LintResult result;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    result.output.append(buf.data(), got);
  const int status = pclose(pipe);
  result.exit_code = (status >= 0 && WIFEXITED(status))
                         ? WEXITSTATUS(status)
                         : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(FRLFI_LINT_FIXTURES) + "/" + name;
}

}  // namespace

// ------------------------------------------------------------ violations --

TEST(LintFixtures, R1ViolationsEachBannedSourceFires) {
  const LintResult r = run_lint(fixture("r1_violation.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.active("R1"), 5u) << r.output;
  EXPECT_EQ(r.suppressed("R1"), 0u) << r.output;
  // One finding per banned construct.
  EXPECT_EQ(r.count("random_device"), 1u) << r.output;
  EXPECT_EQ(r.count("srand()"), 1u) << r.output;
  EXPECT_EQ(r.count("rand()"), 2u) << r.output;  // rand() + srand()
  EXPECT_EQ(r.count("time()"), 1u) << r.output;
  EXPECT_EQ(r.count("steady_clock"), 1u) << r.output;
  EXPECT_NE(r.output.find("finding(s)"), std::string::npos) << r.output;
}

TEST(LintFixtures, R2AdvancingDrawsOnCapturedRngFire) {
  const LintResult r = run_lint(fixture("r2_violation.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.active("R2"), 3u) << r.output;
  // The inline-lambda and the named-body (auto body = [&]{...};
  // dispatch_lanes(..., body)) forms are both caught, with the receiver
  // named; suffixed draw names match on the stem (next -> next_u64).
  EXPECT_NE(r.output.find("'rng.uniform()'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'agent_rng.normal()'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'seed_rng.next_u64()'"), std::string::npos)
      << r.output;
}

TEST(LintFixtures, R3UnorderedRangeForFires) {
  const LintResult r = run_lint(fixture("r3_violation.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.active("R3"), 2u) << r.output;
}

TEST(LintFixtures, R4PragmasInSourceFire) {
  const LintResult r = run_lint(fixture("r4_violation.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.active("R4"), 2u) << r.output;
}

TEST(LintFixtures, R4FastMathInBuildFileFires) {
  const LintResult r = run_lint(fixture("r4_violation.cmake"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.active("R4"), 1u) << r.output;
  EXPECT_NE(r.output.find("-ffast-math"), std::string::npos) << r.output;
}

// ---------------------------------------------------------- suppressions --

TEST(LintFixtures, AllowTrailersSuppressButStayReported) {
  const struct {
    const char* file;
    const char* rule;
  } cases[] = {{"r1_suppressed.cpp", "R1"},
               {"r2_suppressed.cpp", "R2"},
               {"r3_suppressed.cpp", "R3"},
               {"r4_suppressed.cpp", "R4"},
               {"r4_suppressed.cmake", "R4"}};
  for (const auto& c : cases) {
    const LintResult r = run_lint(fixture(c.file));
    EXPECT_EQ(r.exit_code, 0) << c.file << "\n" << r.output;
    EXPECT_EQ(r.suppressed(c.rule), 1u) << c.file << "\n" << r.output;
    // A suppressed line prints "RN (suppressed):", never a bare "RN:",
    // so zero active findings — but it must stay visible in the report.
    EXPECT_EQ(r.active(c.rule), 0u) << c.file << "\n" << r.output;
    EXPECT_NE(r.output.find("1 suppressed"), std::string::npos)
        << c.file << "\n" << r.output;
  }
}

// ----------------------------------------------------------- clean files --

TEST(LintFixtures, CleanLookAlikesStaySilent) {
  for (const char* f : {"clean.cpp", "r2_clean.cpp"}) {
    const LintResult r = run_lint(fixture(f));
    EXPECT_EQ(r.exit_code, 0) << f << "\n" << r.output;
    EXPECT_NE(r.output.find("0 finding(s), 0 suppressed"),
              std::string::npos)
        << f << "\n" << r.output;
  }
}

// ------------------------------------------------------- directory sweep --

TEST(LintFixtures, DirectoryWalkAggregatesEverything) {
  const LintResult r = run_lint(std::string(FRLFI_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // 5 R1 + 3 R2 + 2 R3 + (2 cpp + 1 cmake) R4 active, one suppressed per
  // suppression fixture.
  EXPECT_EQ(r.active("R1"), 5u) << r.output;
  EXPECT_EQ(r.active("R2"), 3u) << r.output;
  EXPECT_EQ(r.active("R3"), 2u) << r.output;
  EXPECT_EQ(r.active("R4"), 3u) << r.output;
  EXPECT_NE(r.output.find("13 finding(s), 5 suppressed"), std::string::npos)
      << r.output;
}

TEST(LintFixtures, RuleFilterRestrictsFindings) {
  const LintResult r =
      run_lint("--rules R2 " + std::string(FRLFI_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.active("R1"), 0u) << r.output;
  EXPECT_EQ(r.active("R2"), 3u) << r.output;
  EXPECT_EQ(r.active("R3"), 0u) << r.output;
  EXPECT_EQ(r.active("R4"), 0u) << r.output;

  const LintResult clean =
      run_lint("--rules R1 " + fixture("r2_violation.cpp"));
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
}

// ------------------------------------------------------------ exit codes --

TEST(LintCli, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_lint("").exit_code, 2);                          // no paths
  EXPECT_EQ(run_lint("--definitely-not-a-flag x.cpp").exit_code, 2);
  EXPECT_EQ(run_lint("--rules R9 x.cpp").exit_code, 2);          // bad rule
  EXPECT_EQ(run_lint(fixture("no_such_file.cpp")).exit_code, 2);
}

TEST(LintCli, QuietPrintsSummaryOnly) {
  const LintResult r = run_lint("--quiet " + fixture("r1_violation.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.output.find("R1:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("5 finding(s)"), std::string::npos) << r.output;
}

// ------------------------------------------------------- the tree itself --

// The shipped library lints clean: the determinism discipline the tests
// enforce dynamically holds statically too. Suppressions are allowed
// (gemm.cpp's pinned-reduction pragmas carry allow(R4) trailers) but
// must stay visible in the report.
TEST(LintTree, SrcIsClean) {
  const LintResult r = run_lint(std::string(FRLFI_LINT_SRC));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find(" 0 finding(s)"), std::string::npos) << r.output;
}
