#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "nn/activations.hpp"

namespace frlfi {
namespace {

TEST(TdLoss, GradientOnlyOnChosenAction) {
  const Tensor q = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  float loss = 0.0f;
  const Tensor g = td_loss_grad(q, 1, 5.0f, &loss);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], -3.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
  EXPECT_FLOAT_EQ(loss, 4.5f);
}

TEST(TdLoss, ZeroErrorZeroGrad) {
  const Tensor q = Tensor::from_vector({1.0f, 2.0f});
  const Tensor g = td_loss_grad(q, 0, 1.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(TdLoss, RejectsBadAction) {
  EXPECT_THROW(td_loss_grad(Tensor({2}), 2, 0.0f), Error);
}

TEST(PolicyGradient, MatchesFiniteDifference) {
  const Tensor logits = Tensor::from_vector({0.2f, -0.5f, 1.0f});
  const std::size_t action = 2;
  const float advantage = 1.7f;
  const Tensor g = policy_gradient_grad(logits, action, advantage);

  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    // L = -advantage * log softmax(logits)[action]
    const double num = (-advantage * log_softmax_at(lp, action) +
                        advantage * log_softmax_at(lm, action)) /
                       (2 * eps);
    EXPECT_NEAR(g[i], num, 1e-3) << "component " << i;
  }
}

TEST(PolicyGradient, ZeroAdvantageZeroGrad) {
  const Tensor g =
      policy_gradient_grad(Tensor::from_vector({1.0f, 2.0f}), 0, 0.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
}

TEST(PolicyGradient, GradSumsToZero) {
  // softmax - onehot always sums to zero; scaled by advantage it still does.
  const Tensor g = policy_gradient_grad(
      Tensor::from_vector({0.3f, -0.9f, 2.2f, 0.0f}), 1, 2.5f);
  EXPECT_NEAR(g.sum(), 0.0f, 1e-6);
}

TEST(Mse, KnownValue) {
  const Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({1, 4, 3});
  EXPECT_NEAR(mse(a, b), 4.0f / 3.0f, 1e-6);
}

TEST(Mse, RejectsMismatch) {
  EXPECT_THROW(mse(Tensor({2}), Tensor({3})), Error);
}

}  // namespace
}  // namespace frlfi
