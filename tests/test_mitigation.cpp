#include <gtest/gtest.h>

#include "core/error.hpp"
#include "frl/policies.hpp"
#include "mitigation/checkpoint.hpp"
#include "mitigation/range_detector.hpp"
#include "mitigation/reward_monitor.hpp"

namespace frlfi {
namespace {

RewardDropMonitor::Options fast_detector() {
  RewardDropMonitor::Options o;
  o.drop_percent = 25.0;
  o.consecutive_episodes = 3;
  o.warmup_episodes = 5;
  o.baseline_beta = 0.5;
  return o;
}

TEST(RewardMonitor, NoFaultNoDetection) {
  RewardDropMonitor mon(4, fast_detector());
  for (int ep = 0; ep < 50; ++ep)
    EXPECT_EQ(mon.observe({10, 10, 10, 10}), DetectedFault::None);
}

TEST(RewardMonitor, SingleAgentDropDetectedAsAgentFault) {
  RewardDropMonitor mon(4, fast_detector());
  for (int ep = 0; ep < 10; ++ep) mon.observe({10, 10, 10, 10});
  DetectedFault verdict = DetectedFault::None;
  for (int ep = 0; ep < 5 && verdict == DetectedFault::None; ++ep)
    verdict = mon.observe({10, 1, 10, 10});
  EXPECT_EQ(verdict, DetectedFault::Agent);
  ASSERT_EQ(mon.flagged_agents().size(), 1u);
  EXPECT_EQ(mon.flagged_agents()[0], 1u);
}

TEST(RewardMonitor, MajorityDropDetectedAsServerFault) {
  RewardDropMonitor mon(4, fast_detector());
  for (int ep = 0; ep < 10; ++ep) mon.observe({10, 10, 10, 10});
  DetectedFault verdict = DetectedFault::None;
  for (int ep = 0; ep < 5 && verdict == DetectedFault::None; ++ep)
    verdict = mon.observe({1, 1, 1, 10});
  EXPECT_EQ(verdict, DetectedFault::Server);
}

TEST(RewardMonitor, TransientDipDoesNotTrigger) {
  RewardDropMonitor mon(2, fast_detector());
  for (int ep = 0; ep < 10; ++ep) mon.observe({10, 10});
  // Two bad episodes (below k=3), then recovery.
  EXPECT_EQ(mon.observe({1, 10}), DetectedFault::None);
  EXPECT_EQ(mon.observe({1, 10}), DetectedFault::None);
  EXPECT_EQ(mon.observe({10, 10}), DetectedFault::None);
  EXPECT_EQ(mon.observe({1, 10}), DetectedFault::None);  // counter was reset
}

TEST(RewardMonitor, WarmupSuppressesEarlyTriggers) {
  RewardDropMonitor mon(2, fast_detector());
  // Wild swings during warmup must not trigger.
  for (int ep = 0; ep < 5; ++ep)
    EXPECT_EQ(mon.observe({ep % 2 ? 10.0 : -10.0, 10}), DetectedFault::None);
}

TEST(RewardMonitor, BaselineFrozenDuringDrop) {
  RewardDropMonitor mon(1, fast_detector());
  for (int ep = 0; ep < 20; ++ep) mon.observe({10});
  const double base = mon.baseline(0);
  mon.observe({0.0});
  EXPECT_EQ(mon.baseline(0), base);  // dropped episode not absorbed
}

TEST(RewardMonitor, AcknowledgeAndSuspicious) {
  RewardDropMonitor mon(2, fast_detector());
  for (int ep = 0; ep < 10; ++ep) mon.observe({10, 10});
  EXPECT_FALSE(mon.suspicious());
  mon.observe({1, 10});
  EXPECT_TRUE(mon.suspicious());
  mon.acknowledge();
  EXPECT_FALSE(mon.suspicious());
}

TEST(RewardMonitor, Validation) {
  RewardDropMonitor mon(2, fast_detector());
  EXPECT_THROW(mon.observe({1.0}), Error);
  EXPECT_THROW(mon.baseline(2), Error);
  RewardDropMonitor::Options bad = fast_detector();
  bad.drop_percent = 0.0;
  EXPECT_THROW(RewardDropMonitor(2, bad), Error);
}

TEST(RewardMonitor, StateRoundTripReproducesUninterruptedVerdicts) {
  // The snapshot gap this closes: restoring a monitor used to reset its
  // baseline history, so a resumed run re-warmed and missed (or re-timed)
  // detections. Carrying State must make the resumed verdict stream
  // identical to the uninterrupted one.
  RewardDropMonitor mon(3, fast_detector());
  for (int ep = 0; ep < 8; ++ep) mon.observe({10, 11, 12});
  mon.observe({10, 2, 12});  // one below-threshold episode in flight
  const RewardDropMonitor::State mid = mon.state();
  EXPECT_EQ(mid.baseline.size(), 3u);
  EXPECT_GT(mid.below_count[1], 0u);

  // Uninterrupted continuation.
  std::vector<DetectedFault> direct;
  for (int ep = 0; ep < 4; ++ep) direct.push_back(mon.observe({10, 2, 12}));

  // Fresh monitor resumed from the captured state.
  RewardDropMonitor resumed(3, fast_detector());
  resumed.set_state(mid);
  EXPECT_TRUE(resumed.suspicious());
  for (std::size_t a = 0; a < 3; ++a)
    EXPECT_EQ(resumed.baseline(a), mid.baseline[a]);
  std::vector<DetectedFault> replay;
  for (int ep = 0; ep < 4; ++ep) replay.push_back(resumed.observe({10, 2, 12}));
  EXPECT_EQ(replay, direct);
  EXPECT_EQ(resumed.flagged_agents(), mon.flagged_agents());
  for (std::size_t a = 0; a < 3; ++a)
    EXPECT_EQ(resumed.baseline(a), mon.baseline(a));
}

TEST(RewardMonitor, SetStateValidatesSizes) {
  RewardDropMonitor mon(3, fast_detector());
  RewardDropMonitor::State bad = mon.state();
  bad.baseline.pop_back();
  EXPECT_THROW(mon.set_state(bad), Error);
  bad = mon.state();
  bad.below_count.push_back(0);
  EXPECT_THROW(mon.set_state(bad), Error);
  bad = mon.state();
  bad.seen.clear();
  EXPECT_THROW(mon.set_state(bad), Error);
}

TEST(CheckpointStore, StateRoundTripKeepsSnapshotAndCounters) {
  CheckpointStore store(5);
  store.offer(5, {3.0f, 4.0f});
  store.restore();
  const CheckpointStore::State mid = store.state();

  CheckpointStore resumed(5);
  resumed.set_state(mid);
  EXPECT_TRUE(resumed.has_checkpoint());
  EXPECT_EQ(resumed.restore(), std::vector<float>({3.0f, 4.0f}));
  EXPECT_EQ(resumed.snapshots_taken(), 1u);
  EXPECT_EQ(resumed.restores_served(), 2u);

  // Empty state round-trips to "no checkpoint yet".
  CheckpointStore blank(5);
  resumed.set_state(blank.state());
  EXPECT_FALSE(resumed.has_checkpoint());
}

TEST(CheckpointStore, SnapshotsAtInterval) {
  CheckpointStore store(5);
  EXPECT_FALSE(store.has_checkpoint());
  EXPECT_FALSE(store.offer(1, {1.0f}));
  EXPECT_FALSE(store.offer(4, {1.0f}));
  EXPECT_TRUE(store.offer(5, {2.0f}));
  EXPECT_TRUE(store.has_checkpoint());
  EXPECT_EQ(store.snapshots_taken(), 1u);
  EXPECT_EQ(store.restore()[0], 2.0f);
  EXPECT_EQ(store.restores_served(), 1u);
}

TEST(CheckpointStore, KeepsLatestSnapshot) {
  CheckpointStore store(1);
  store.offer(1, {1.0f});
  store.offer(2, {2.0f});
  EXPECT_EQ(store.restore()[0], 2.0f);
}

TEST(CheckpointStore, RestoreBeforeSnapshotThrows) {
  CheckpointStore store(5);
  EXPECT_THROW(store.restore(), Error);
  EXPECT_THROW(CheckpointStore(0), Error);
}

TEST(CheckpointStore, MemoryFootprint) {
  CheckpointStore store(1);
  store.offer(1, std::vector<float>(100, 0.0f));
  EXPECT_EQ(store.memory_bytes(), 400u);
}

TEST(RangeDetector, CleanNetworkPasses) {
  Rng rng(1);
  Network net = make_gridworld_policy(rng);
  RangeAnomalyDetector det(net, {.margin = 0.10});
  EXPECT_EQ(det.scan(net), 0u);
  EXPECT_EQ(det.scan_and_suppress(net), 0u);
}

TEST(RangeDetector, BoundsIncludeMargin) {
  Rng rng(2);
  Network net = make_gridworld_policy(rng);
  auto params = net.parameters();
  params[0]->value[0] = -1.0f;
  params[0]->value[1] = 2.0f;
  RangeAnomalyDetector det(net, {.margin = 0.10});
  const auto [lo, hi] = det.bounds(0);
  EXPECT_FLOAT_EQ(lo, -1.1f);
  EXPECT_FLOAT_EQ(hi, 2.2f);
}

TEST(RangeDetector, SuppressesOutliersToZero) {
  Rng rng(3);
  Network net = make_gridworld_policy(rng);
  RangeAnomalyDetector det(net, {.margin = 0.10});
  Network corrupted = net.clone();
  auto params = corrupted.parameters();
  params[0]->value[3] = 1000.0f;   // way out of range
  params[2]->value[0] = -500.0f;
  EXPECT_EQ(det.scan(corrupted), 2u);
  EXPECT_EQ(det.scan_and_suppress(corrupted), 2u);
  EXPECT_EQ(corrupted.parameters()[0]->value[3], 0.0f);
  EXPECT_EQ(corrupted.parameters()[2]->value[0], 0.0f);
  EXPECT_EQ(det.scan(corrupted), 0u);
}

TEST(RangeDetector, InRangeCorruptionIsInvisible) {
  // Range detection is symptom-based: a flip that stays inside the
  // calibrated range cannot be seen (the paper accepts this: small values
  // are unlikely to become outliers).
  Rng rng(4);
  Network net = make_gridworld_policy(rng);
  RangeAnomalyDetector det(net, {.margin = 0.10});
  Network corrupted = net.clone();
  auto params = corrupted.parameters();
  params[0]->value[0] = params[0]->value[1];  // legal value, wrong place
  EXPECT_EQ(det.scan(corrupted), 0u);
}

TEST(RangeDetector, TopologyMismatchThrows) {
  Rng rng(5);
  Network grid = make_gridworld_policy(rng);
  Network drone = make_drone_policy(rng);
  RangeAnomalyDetector det(grid, {.margin = 0.10});
  EXPECT_THROW(det.scan(drone), Error);
}

std::vector<Tensor> calibration_obs(std::size_t n, std::uint64_t seed) {
  std::vector<Tensor> obs;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    obs.push_back(Tensor::random_uniform({10}, rng, 0.0f, 1.0f));
  return obs;
}

TEST(RangeDetector, ActivationCalibrationCoversEveryLayer) {
  Rng rng(7);
  Network net = make_gridworld_policy(rng);
  RangeAnomalyDetector det(net, {.margin = 0.10});
  EXPECT_FALSE(det.has_activation_calibration());
  det.calibrate_activations(net, calibration_obs(16, 70));
  ASSERT_TRUE(det.has_activation_calibration());
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    const auto [lo, hi] = det.activation_bounds(l);
    EXPECT_LE(lo, hi) << "layer " << l;
  }
  EXPECT_THROW(det.activation_bounds(net.layer_count()), Error);
}

TEST(RangeDetector, CleanActivationsPassBatched) {
  Rng rng(8);
  Network net = make_gridworld_policy(rng);
  RangeAnomalyDetector det(net, {.margin = 0.10});
  const auto obs = calibration_obs(16, 80);
  det.calibrate_activations(net, obs);
  // Batched activations of calibration inputs sit inside the widened
  // ranges: screening in one pass over the whole batch suppresses nothing.
  Tensor batch({obs.size(), 10});
  for (std::size_t b = 0; b < obs.size(); ++b)
    for (std::size_t j = 0; j < 10; ++j) batch[b * 10 + j] = obs[b][j];
  std::size_t suppressed = 0;
  net.set_activation_hook([&](std::size_t layer, Tensor& act) {
    suppressed += det.suppress_activations(layer, act);
  });
  net.forward_batch(batch, obs.size());
  net.set_activation_hook(nullptr);
  EXPECT_EQ(suppressed, 0u);
}

TEST(RangeDetector, SuppressesOutlierActivationsInOnePass) {
  Rng rng(9);
  Network net = make_gridworld_policy(rng);
  RangeAnomalyDetector det(net, {.margin = 0.10});
  det.calibrate_activations(net, calibration_obs(16, 90));
  const auto [lo, hi] = det.activation_bounds(0);
  // A batched layer-0 activation with outliers planted in two samples.
  Tensor act({4, 32}, 0.0f);
  act[5] = hi * 4.0f + 1.0f;
  act[3 * 32 + 7] = lo - 100.0f;
  EXPECT_EQ(det.scan_activations(0, act), 2u);
  EXPECT_EQ(det.suppress_activations(0, act), 2u);
  EXPECT_EQ(act[5], 0.0f);
  EXPECT_EQ(act[3 * 32 + 7], 0.0f);
  EXPECT_EQ(det.scan_activations(0, act), 0u);
}

TEST(RangeDetector, ActivationScreeningCatchesInRangeWeightFault) {
  // The scenario weight scanning misses: corrupted weights that stay
  // inside the calibrated weight range can still drive activations far
  // outside their range, where the activation screen catches them.
  Rng rng(10);
  Network net = make_gridworld_policy(rng);
  RangeAnomalyDetector det(net, {.margin = 0.10});
  det.calibrate_activations(net, calibration_obs(32, 100));
  Network corrupted = net.clone();
  // Set every first-layer weight to the calibrated max: individually legal,
  // collectively an out-of-range activation amplifier.
  auto params = corrupted.parameters();
  const float legal = params[0]->value.max();
  for (float& w : params[0]->value.data()) w = legal;
  EXPECT_EQ(det.scan(corrupted), 0u);  // weight scan sees nothing
  Rng obs_rng(101);
  const Tensor obs = Tensor::random_uniform({1, 10}, obs_rng, 0.5f, 1.0f);
  std::size_t suppressed = 0;
  corrupted.set_activation_hook([&](std::size_t layer, Tensor& act) {
    suppressed += det.suppress_activations(layer, act);
  });
  corrupted.forward_batch(obs, 1);
  corrupted.set_activation_hook(nullptr);
  EXPECT_GT(suppressed, 0u);
}

TEST(RangeDetector, ZeroMarginIsExactRange) {
  Rng rng(6);
  Network net = make_gridworld_policy(rng);
  RangeAnomalyDetector det(net, {.margin = 0.0});
  EXPECT_EQ(det.scan(net), 0u);
  Network c = net.clone();
  c.parameters()[0]->value[0] = c.parameters()[0]->value.max() * 1.01f;
  EXPECT_EQ(det.scan(c), 1u);
}

}  // namespace
}  // namespace frlfi
