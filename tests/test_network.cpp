#include "nn/network.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "frl/policies.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"

namespace frlfi {
namespace {

Network small_net(Rng& rng) {
  Network net;
  net.add(std::make_unique<Dense>(3, 4, rng, "a"))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(4, 2, rng, "b"));
  return net;
}

TEST(Network, ForwardShapesAndLayerAccess) {
  Rng rng(1);
  Network net = small_net(rng);
  EXPECT_EQ(net.layer_count(), 3u);
  const Tensor y = net.forward(Tensor({3}, 0.5f));
  EXPECT_EQ(y.size(), 2u);
  EXPECT_THROW(net.layer(3), Error);
}

TEST(Network, EmptyNetworkRejectsUse) {
  Network net;
  EXPECT_THROW(net.forward(Tensor({1}, 0.0f)), Error);
  EXPECT_THROW(net.backward(Tensor({1}, 0.0f)), Error);
  EXPECT_THROW(net.add(nullptr), Error);
}

TEST(Network, ParameterCountMatchesTopology) {
  Rng rng(2);
  Network net = small_net(rng);
  EXPECT_EQ(net.parameter_count(), 3u * 4 + 4 + 4 * 2 + 2);
  EXPECT_EQ(net.parameters().size(), 4u);  // two weights, two biases
}

TEST(Network, FlatParametersRoundTrip) {
  Rng rng(3);
  Network net = small_net(rng);
  std::vector<float> flat = net.flat_parameters();
  ASSERT_EQ(flat.size(), net.parameter_count());
  for (auto& v : flat) v += 1.0f;
  net.set_flat_parameters(flat);
  EXPECT_EQ(net.flat_parameters(), flat);
}

TEST(Network, SetFlatRejectsWrongSize) {
  Rng rng(4);
  Network net = small_net(rng);
  EXPECT_THROW(net.set_flat_parameters(std::vector<float>(3)), Error);
}

TEST(Network, CloneIsDeepAndIndependent) {
  Rng rng(5);
  Network net = small_net(rng);
  Network copy = net.clone();
  EXPECT_EQ(copy.flat_parameters(), net.flat_parameters());
  std::vector<float> flat = copy.flat_parameters();
  flat[0] += 9.0f;
  copy.set_flat_parameters(flat);
  EXPECT_NE(copy.flat_parameters(), net.flat_parameters());
}

TEST(Network, CloneComputesSameOutputs) {
  Rng rng(6);
  Network net = small_net(rng);
  Network copy = net.clone();
  const Tensor x = Tensor::random_uniform({3}, rng, -1, 1);
  EXPECT_TRUE(net.forward(x).equals(copy.forward(x)));
}

TEST(Network, ZeroGradClearsAccumulators) {
  Rng rng(7);
  Network net = small_net(rng);
  net.forward(Tensor({3}, 1.0f));
  net.backward(Tensor({2}, 1.0f));
  bool any_nonzero = false;
  for (Parameter* p : net.parameters())
    for (float g : p->grad.data()) any_nonzero |= (g != 0.0f);
  EXPECT_TRUE(any_nonzero);
  net.zero_grad();
  for (Parameter* p : net.parameters())
    for (float g : p->grad.data()) EXPECT_EQ(g, 0.0f);
}

TEST(Network, ActivationHookSeesEveryLayer) {
  Rng rng(8);
  Network net = small_net(rng);
  std::vector<std::size_t> seen;
  net.set_activation_hook([&](std::size_t i, Tensor&) { seen.push_back(i); });
  net.forward(Tensor({3}, 1.0f));
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Network, ActivationHookCanMutate) {
  Rng rng(9);
  Network net = small_net(rng);
  const Tensor clean = net.forward(Tensor({3}, 1.0f));
  net.set_activation_hook([](std::size_t i, Tensor& act) {
    if (i == 2) act.fill(0.0f);  // zero the final output
  });
  const Tensor hooked = net.forward(Tensor({3}, 1.0f));
  EXPECT_EQ(hooked.sum(), 0.0f);
  net.set_activation_hook(nullptr);
  EXPECT_TRUE(net.forward(Tensor({3}, 1.0f)).equals(clean));
}

TEST(Network, SaveLoadParameters) {
  Rng rng(10);
  Network net = small_net(rng);
  std::stringstream ss;
  net.save_parameters(ss);
  Rng rng2(99);
  Network other = small_net(rng2);
  EXPECT_NE(other.flat_parameters(), net.flat_parameters());
  other.load_parameters(ss);
  EXPECT_EQ(other.flat_parameters(), net.flat_parameters());
}

TEST(Network, LoadRejectsWrongTopology) {
  Rng rng(11);
  Network net = small_net(rng);
  std::stringstream ss;
  net.save_parameters(ss);
  Network bigger;
  bigger.add(std::make_unique<Dense>(10, 10, rng));
  EXPECT_THROW(bigger.load_parameters(ss), Error);
}

TEST(Network, GridworldPolicyTopology) {
  Rng rng(12);
  Network net = make_gridworld_policy(rng);
  const Tensor y = net.forward(Tensor({10}, 0.0f));
  EXPECT_EQ(y.size(), 4u);
}

TEST(Network, DronePolicyTopology) {
  Rng rng(13);
  Network net = make_drone_policy(rng);
  const Tensor y = net.forward(Tensor({3, 18, 32}, 0.1f));
  EXPECT_EQ(y.size(), 25u);
}

}  // namespace
}  // namespace frlfi
