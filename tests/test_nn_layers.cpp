#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/network.hpp"
#include "nn/pool.hpp"

namespace frlfi {
namespace {

/// Finite-difference check of dLoss/dInput and dLoss/dParams for a network
/// under the scalar loss L = sum(output). Returns max relative error.
double gradient_check(Network& net, const Tensor& input) {
  const double eps = 1e-3;
  const auto loss = [&](const Tensor& x) {
    return static_cast<double>(net.forward(x).sum());
  };

  // Analytic gradients.
  net.zero_grad();
  const Tensor out = net.forward(input);
  const Tensor grad_in = net.backward(Tensor(out.shape(), 1.0f));

  double max_err = 0.0;
  // Input gradient.
  for (std::size_t i = 0; i < input.size(); ++i) {
    Tensor xp = input, xm = input;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double num = (loss(xp) - loss(xm)) / (2 * eps);
    const double err = std::abs(num - grad_in[i]) /
                       std::max(1.0, std::abs(num) + std::abs(grad_in[i]));
    max_err = std::max(max_err, err);
  }
  // Parameter gradients (recompute analytic after the perturbing passes
  // overwrote caches).
  net.zero_grad();
  net.forward(input);
  net.backward(Tensor(out.shape(), 1.0f));
  for (Parameter* p : net.parameters()) {
    std::vector<float> analytic = p->grad.data();
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double lp = loss(input);
      p->value[i] = saved - static_cast<float>(eps);
      const double lm = loss(input);
      p->value[i] = saved;
      const double num = (lp - lm) / (2 * eps);
      const double err = std::abs(num - analytic[i]) /
                         std::max(1.0, std::abs(num) + std::abs(analytic[i]));
      max_err = std::max(max_err, err);
    }
  }
  return max_err;
}

TEST(Dense, ForwardKnownValues) {
  Rng rng(1);
  Dense d(2, 2, rng, "d");
  d.weight().value = Tensor::from_vector({1, 2, 3, 4}).reshaped({2, 2});
  d.bias().value = Tensor::from_vector({0.5f, -0.5f});
  const Tensor y = d.forward(Tensor::from_vector({1, 1}));
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_FLOAT_EQ(y[1], 6.5f);
}

TEST(Dense, RejectsWrongInputSize) {
  Rng rng(1);
  Dense d(3, 2, rng);
  EXPECT_THROW(d.forward(Tensor({4})), Error);
  EXPECT_THROW(d.backward(Tensor({2})), Error);  // before forward
}

TEST(Dense, GradientCheck) {
  Rng rng(2);
  Network net;
  net.add(std::make_unique<Dense>(4, 3, rng));
  const Tensor x = Tensor::random_uniform({4}, rng, -1, 1);
  EXPECT_LT(gradient_check(net, x), 1e-3);
}

TEST(Dense, XavierInitBounded) {
  Rng rng(3);
  Dense d(100, 100, rng);
  const float bound = std::sqrt(6.0f / 200.0f);
  EXPECT_GE(d.weight().value.min(), -bound);
  EXPECT_LE(d.weight().value.max(), bound);
  EXPECT_EQ(d.bias().value.sum(), 0.0f);
}

TEST(Conv2D, OutExtentFormula) {
  Rng rng(1);
  Conv2D c(1, 1, 3, 2, 1, rng);
  EXPECT_EQ(c.out_extent(5), 3u);  // (5+2-3)/2+1
  Conv2D c2(1, 1, 4, 3, 0, rng);
  EXPECT_EQ(c2.out_extent(18), 5u);
}

TEST(Conv2D, ForwardIdentityKernel) {
  Rng rng(1);
  Conv2D c(1, 1, 1, 1, 0, rng);
  c.weight().value = Tensor({1, 1, 1, 1}, 2.0f);
  c.bias().value = Tensor({1}, 1.0f);
  Tensor x({1, 2, 2});
  x.at3(0, 0, 0) = 1;
  x.at3(0, 1, 1) = 3;
  const Tensor y = c.forward(x);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at3(0, 1, 1), 7.0f);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 1), 1.0f);
}

TEST(Conv2D, ForwardSumKernel) {
  Rng rng(1);
  Conv2D c(1, 1, 2, 1, 0, rng);
  c.weight().value = Tensor({1, 1, 2, 2}, 1.0f);
  c.bias().value = Tensor({1}, 0.0f);
  Tensor x({1, 2, 3});
  for (std::size_t i = 0; i < 6; ++i) x[i] = static_cast<float>(i + 1);
  // x = [[1 2 3],[4 5 6]]; 2x2 sums: [1+2+4+5, 2+3+5+6] = [12, 16]
  const Tensor y = c.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 16.0f);
}

TEST(Conv2D, PaddingContributesZeros) {
  Rng rng(1);
  Conv2D c(1, 1, 3, 1, 1, rng);
  c.weight().value = Tensor({1, 1, 3, 3}, 1.0f);
  c.bias().value = Tensor({1}, 0.0f);
  const Tensor y = c.forward(Tensor({1, 2, 2}, 1.0f));
  // Corner output touches 4 real pixels (others are padding).
  EXPECT_FLOAT_EQ(y.at3(0, 0, 0), 4.0f);
}

TEST(Conv2D, GradientCheck) {
  Rng rng(5);
  Network net;
  net.add(std::make_unique<Conv2D>(2, 3, 3, 2, 1, rng));
  const Tensor x = Tensor::random_uniform({2, 5, 6}, rng, -1, 1);
  EXPECT_LT(gradient_check(net, x), 1e-3);
}

TEST(Conv2D, RejectsWrongChannelCount) {
  Rng rng(1);
  Conv2D c(3, 4, 3, 1, 0, rng);
  EXPECT_THROW(c.forward(Tensor({2, 5, 5})), Error);
}

TEST(MaxPool2D, ForwardPicksMaxima) {
  MaxPool2D p(2);
  Tensor x({1, 2, 4});
  for (std::size_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  const Tensor y = p.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D p(2);
  Tensor x({1, 2, 2});
  x[3] = 10.0f;
  p.forward(x);
  const Tensor g = p.backward(Tensor({1, 1, 1}, 1.0f));
  EXPECT_FLOAT_EQ(g[3], 1.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(MaxPool2D, GradientCheckThroughNet) {
  Rng rng(6);
  Network net;
  net.add(std::make_unique<Conv2D>(1, 2, 3, 1, 1, rng));
  net.add(std::make_unique<MaxPool2D>(2));
  const Tensor x = Tensor::random_uniform({1, 4, 4}, rng, -1, 1);
  EXPECT_LT(gradient_check(net, x), 1e-3);
}

TEST(ReLU, ForwardBackward) {
  ReLU r;
  const Tensor y = r.forward(Tensor::from_vector({-1, 0, 2}));
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  const Tensor g = r.backward(Tensor::from_vector({5, 5, 5}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);  // gradient is zero at the kink's left side
  EXPECT_FLOAT_EQ(g[2], 5.0f);
}

TEST(Tanh, ForwardBackwardMatchesDerivative) {
  Tanh t;
  const Tensor y = t.forward(Tensor::from_vector({0.5f}));
  EXPECT_NEAR(y[0], std::tanh(0.5f), 1e-6);
  const Tensor g = t.backward(Tensor::from_vector({1.0f}));
  EXPECT_NEAR(g[0], 1.0f - std::tanh(0.5f) * std::tanh(0.5f), 1e-6);
}

TEST(Flatten, RoundTripsShape) {
  Flatten f;
  const Tensor y = f.forward(Tensor({2, 3, 4}, 1.0f));
  EXPECT_EQ(y.rank(), 1u);
  EXPECT_EQ(y.size(), 24u);
  const Tensor g = f.backward(y);
  EXPECT_EQ(g.shape(), (std::vector<std::size_t>{2, 3, 4}));
}

TEST(Softmax, SumsToOneAndOrders) {
  const Tensor p = softmax(Tensor::from_vector({1, 2, 3}));
  EXPECT_NEAR(p.sum(), 1.0f, 1e-6);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, StableForHugeLogits) {
  const Tensor p = softmax(Tensor::from_vector({1000.0f, 1001.0f}));
  EXPECT_NEAR(p.sum(), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(LogSoftmaxAt, MatchesLogOfSoftmax) {
  const Tensor logits = Tensor::from_vector({0.3f, -1.2f, 2.0f});
  const Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(log_softmax_at(logits, i), std::log(p[i]), 1e-5);
}

TEST(Layers, CloneDropsCachesButKeepsParams) {
  Rng rng(7);
  Dense d(2, 2, rng);
  d.forward(Tensor({2}, 1.0f));
  auto copy = d.clone();
  // The clone must refuse backward before its own forward.
  EXPECT_THROW(copy->backward(Tensor({2}, 1.0f)), Error);
  auto* dc = dynamic_cast<Dense*>(copy.get());
  ASSERT_NE(dc, nullptr);
  EXPECT_TRUE(dc->weight().value.equals(d.weight().value));
}

TEST(Layers, NamesDescribeConfiguration) {
  Rng rng(1);
  EXPECT_NE(Dense(2, 3, rng, "fc").name().find("2->3"), std::string::npos);
  EXPECT_NE(Conv2D(1, 2, 3, 1, 0, rng, "cv").name().find("k3"),
            std::string::npos);
  EXPECT_NE(MaxPool2D(2).name().find("2x2"), std::string::npos);
}

}  // namespace
}  // namespace frlfi
