#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "nn/dense.hpp"

namespace frlfi {
namespace {

Network one_dense(Rng& rng) {
  Network net;
  net.add(std::make_unique<Dense>(1, 1, rng));
  return net;
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Rng rng(1);
  Network net = one_dense(rng);
  auto params = net.parameters();
  params[0]->value[0] = 1.0f;
  params[0]->grad[0] = 2.0f;
  params[1]->grad[0] = -1.0f;
  SgdOptimizer opt(net, {.learning_rate = 0.1f, .momentum = 0.0f, .clip_norm = 0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(params[0]->value[0], 0.8f);
  EXPECT_FLOAT_EQ(params[1]->value[0], 0.1f);
  // Gradients cleared after the step.
  EXPECT_EQ(params[0]->grad[0], 0.0f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Rng rng(2);
  Network net = one_dense(rng);
  auto params = net.parameters();
  params[0]->value[0] = 0.0f;
  SgdOptimizer opt(net, {.learning_rate = 0.1f, .momentum = 0.5f, .clip_norm = 0.0f});
  params[0]->grad[0] = 1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(params[0]->value[0], -0.1f);  // v = -0.1
  params[0]->grad[0] = 1.0f;
  opt.step();
  // v = 0.5*(-0.1) - 0.1 = -0.15; w = -0.25
  EXPECT_FLOAT_EQ(params[0]->value[0], -0.25f);
}

TEST(Sgd, ClippingBoundsUpdateNorm) {
  Rng rng(3);
  Network net = one_dense(rng);
  auto params = net.parameters();
  params[0]->value[0] = 0.0f;
  params[1]->value[0] = 0.0f;
  params[0]->grad[0] = 300.0f;
  params[1]->grad[0] = 400.0f;  // norm 500
  SgdOptimizer opt(net, {.learning_rate = 1.0f, .momentum = 0.0f, .clip_norm = 5.0f});
  opt.step();
  // Scaled by 5/500: updates -3, -4 -> norm 5.
  EXPECT_FLOAT_EQ(params[0]->value[0], -3.0f);
  EXPECT_FLOAT_EQ(params[1]->value[0], -4.0f);
}

TEST(Sgd, NoClippingBelowThreshold) {
  Rng rng(4);
  Network net = one_dense(rng);
  auto params = net.parameters();
  params[0]->value[0] = 0.0f;
  params[1]->value[0] = 0.0f;
  params[0]->grad[0] = 1.0f;
  SgdOptimizer opt(net, {.learning_rate = 1.0f, .momentum = 0.0f, .clip_norm = 5.0f});
  opt.step();
  EXPECT_FLOAT_EQ(params[0]->value[0], -1.0f);
}

TEST(Sgd, RejectsBadHyperparameters) {
  Rng rng(5);
  Network net = one_dense(rng);
  EXPECT_THROW(SgdOptimizer(net, {.learning_rate = 0.0f, .momentum = 0.0f,
                                  .clip_norm = 0.0f}),
               Error);
  EXPECT_THROW(SgdOptimizer(net, {.learning_rate = 0.1f, .momentum = 1.0f,
                                  .clip_norm = 0.0f}),
               Error);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize (w*x - 3)^2 with x = 1: w should approach 3.
  Rng rng(6);
  Network net = one_dense(rng);
  SgdOptimizer opt(net, {.learning_rate = 0.1f, .momentum = 0.0f, .clip_norm = 0.0f});
  const Tensor x({1}, 1.0f);
  for (int i = 0; i < 200; ++i) {
    const Tensor y = net.forward(x);
    Tensor grad({1});
    grad[0] = 2.0f * (y[0] - 3.0f);
    net.backward(grad);
    opt.step();
  }
  EXPECT_NEAR(net.forward(x)[0], 3.0f, 1e-3);
}

}  // namespace
}  // namespace frlfi
