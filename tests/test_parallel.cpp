#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, RangesArePartition) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lk(mu);
    ranges.emplace_back(b, e);
  });
  std::size_t total = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_LT(b, e);
    total += e - b;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(ranges.size(), 3u);
}

TEST(Parallel, FewerItemsThanLanes) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroItemsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no synchronization needed: runs on this thread
  pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(Parallel, ReusableAcrossDispatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      count.fetch_add(e - b);
    });
    ASSERT_EQ(count.load(), 64u);
  }
}

TEST(Parallel, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("lane failure");
                        }),
      std::runtime_error);
  // Pool must still be usable after a failed dispatch.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 8u);
}

TEST(Parallel, RejectsEmptyBody) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, std::function<void(std::size_t, std::size_t)>()),
      Error);
}

TEST(Parallel, ResolveThreadCountPrecedence) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  setenv("FRLFI_NUM_THREADS", "5", 1);
  EXPECT_EQ(resolve_thread_count(0), 5u);
  EXPECT_EQ(resolve_thread_count(2), 2u);  // explicit beats env
  setenv("FRLFI_NUM_THREADS", "not-a-number", 1);
  EXPECT_GE(resolve_thread_count(0), 1u);  // malformed env -> hardware
  unsetenv("FRLFI_NUM_THREADS");
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(Parallel, GlobalPoolIsUsable) {
  std::atomic<std::size_t> count{0};
  ThreadPool::global().parallel_for(16, [&](std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 16u);
}

TEST(Parallel, ShardRangeIsContiguousPartition) {
  for (const std::size_t n : {1u, 7u, 10u, 64u}) {
    for (const std::size_t parts : {1u, 2u, 3u, 7u}) {
      if (parts > n) continue;
      std::size_t expect_begin = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        std::size_t b, e;
        shard_range(n, parts, p, b, e);
        EXPECT_EQ(b, expect_begin);
        EXPECT_LT(b, e);
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

TEST(Parallel, DispatchLanesHonoursMinWorkPerLane) {
  // The minimum-work-per-shard rule: with min_per_lane set, dispatch_lanes
  // caps the lane count at n / min_per_lane so no lane receives less than
  // the threshold's worth of work (same cost model as batch_shard_count).
  const auto record_ranges = [](std::size_t threads, std::size_t n,
                                std::size_t min_per_lane) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    dispatch_lanes(
        threads, n,
        [&](std::size_t b, std::size_t e) {
          std::lock_guard<std::mutex> lk(mu);
          ranges.emplace_back(b, e);
        },
        min_per_lane);
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };

  // Too little work for even two lanes: collapses to one inline range.
  auto small = record_ranges(8, 16, 32);
  ASSERT_EQ(small.size(), 1u);
  EXPECT_EQ(small[0], (std::pair<std::size_t, std::size_t>{0, 16}));

  // Exactly two lanes' worth: splits into two, not eight.
  auto mid = record_ranges(8, 64, 32);
  ASSERT_EQ(mid.size(), 2u);
  for (const auto& [b, e] : mid) EXPECT_GE(e - b, 32u);

  // Default min_per_lane = 1 keeps the historical lane count.
  EXPECT_EQ(record_ranges(8, 64, 1).size(), 8u);

  // Every variant still partitions [0, n).
  for (const auto& ranges : {small, mid}) {
    std::size_t next = 0;
    for (const auto& [b, e] : ranges) {
      EXPECT_EQ(b, next);
      next = e;
    }
  }
}

// Regression: a nested dispatch from inside a pool body used to block on
// cv_done_ forever (the nested generation could never be picked up by the
// lanes already running the outer body). It must run inline instead.
TEST(Parallel, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  std::atomic<std::size_t> inline_nested{0};
  pool.parallel_for(4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      EXPECT_TRUE(pool.on_pool_thread());
      pool.parallel_for(8, [&](std::size_t ib, std::size_t ie) {
        inner_total.fetch_add(ie - ib);
      });
      inline_nested.fetch_add(1);
    }
  });
  EXPECT_EQ(inner_total.load(), 4u * 8u);
  EXPECT_EQ(inline_nested.load(), 4u);
  EXPECT_FALSE(pool.on_pool_thread());
  // Pool still healthy after the nested dispatches.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(16, [&](std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 16u);
}

TEST(Parallel, SameThreadChainAcrossPoolsRunsInline) {
  // One external thread chains dispatches A -> B -> A. The second
  // A-dispatch happens on a thread already inside an A body (this one),
  // so it must detect the ancestor pool on its own stack and run inline.
  // (Cross-THREAD cycles — a worker of A waiting on B while a worker of B
  // waits on A — remain forbidden; see parallel.hpp.)
  ThreadPool a(2), b(2);
  std::atomic<std::size_t> total{0};
  a.parallel_for(1, [&](std::size_t, std::size_t) {
    // Single-part dispatch: runs inline on this thread with A active.
    b.parallel_for(2, [&](std::size_t, std::size_t) {
      EXPECT_TRUE(b.on_pool_thread());
      if (!a.on_pool_thread()) return;  // b's worker thread: A not active
      a.parallel_for(4, [&](std::size_t ib, std::size_t ie) {
        total.fetch_add(ie - ib);
      });
    });
  });
  EXPECT_EQ(total.load(), 4u);
}

TEST(Parallel, NestedGlobalPoolAndCampaignDoNotDeadlock) {
  // run_campaign with threads == 0 dispatches on the global pool; called
  // from inside a global-pool body it must complete inline.
  std::atomic<std::size_t> trials_run{0};
  ThreadPool::global().parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      CampaignConfig cfg{.seed = 7, .trials = 5, .threads = 0};
      const CampaignResult r = run_campaign(cfg, [&](Rng& rng) {
        trials_run.fetch_add(1);
        return rng.uniform();
      });
      EXPECT_EQ(r.stats.count(), 5u);
    }
  });
  EXPECT_EQ(trials_run.load(), 8u * 5u);
}

TEST(Parallel, ConcurrentExternalDispatchersAreSerialized) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> dispatchers;
  for (int d = 0; d < 4; ++d) {
    dispatchers.emplace_back([&] {
      for (int round = 0; round < 25; ++round)
        pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
          total.fetch_add(e - b);
        });
    });
  }
  for (auto& t : dispatchers) t.join();
  EXPECT_EQ(total.load(), 4u * 25u * 8u);
}

TEST(Parallel, CampaignReresolvesEnvThreadsPerCall) {
  // The global pool's lane count pins at first use, but run_campaign must
  // re-read FRLFI_NUM_THREADS per call and still produce serial-identical
  // stats (via an explicit pool when the global size no longer matches).
  ThreadPool::global().size();  // force the pin
  const auto trial = [](Rng& rng) { return rng.uniform(); };
  CampaignConfig serial{.seed = 11, .trials = 40, .threads = 1};
  const CampaignResult want = run_campaign(serial, trial);
  setenv("FRLFI_NUM_THREADS", "3", 1);
  CampaignConfig env_auto{.seed = 11, .trials = 40, .threads = 0};
  const CampaignResult got = run_campaign(env_auto, trial);
  unsetenv("FRLFI_NUM_THREADS");
  EXPECT_EQ(want.stats.count(), got.stats.count());
  EXPECT_EQ(want.stats.mean(), got.stats.mean());
  EXPECT_EQ(want.stats.variance(), got.stats.variance());
}

}  // namespace
}  // namespace frlfi
