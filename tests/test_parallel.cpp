#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, RangesArePartition) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lk(mu);
    ranges.emplace_back(b, e);
  });
  std::size_t total = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_LT(b, e);
    total += e - b;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(ranges.size(), 3u);
}

TEST(Parallel, FewerItemsThanLanes) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroItemsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no synchronization needed: runs on this thread
  pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(Parallel, ReusableAcrossDispatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      count.fetch_add(e - b);
    });
    ASSERT_EQ(count.load(), 64u);
  }
}

TEST(Parallel, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("lane failure");
                        }),
      std::runtime_error);
  // Pool must still be usable after a failed dispatch.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 8u);
}

TEST(Parallel, RejectsEmptyBody) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, std::function<void(std::size_t, std::size_t)>()),
      Error);
}

TEST(Parallel, ResolveThreadCountPrecedence) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  setenv("FRLFI_NUM_THREADS", "5", 1);
  EXPECT_EQ(resolve_thread_count(0), 5u);
  EXPECT_EQ(resolve_thread_count(2), 2u);  // explicit beats env
  setenv("FRLFI_NUM_THREADS", "not-a-number", 1);
  EXPECT_GE(resolve_thread_count(0), 1u);  // malformed env -> hardware
  unsetenv("FRLFI_NUM_THREADS");
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(Parallel, GlobalPoolIsUsable) {
  std::atomic<std::size_t> count{0};
  ThreadPool::global().parallel_for(16, [&](std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 16u);
}

}  // namespace
}  // namespace frlfi
