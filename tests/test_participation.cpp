/// \file test_participation.cpp
/// The degraded-participation plane:
///  * ParticipationPlan status resolution is deterministic, purely
///    functional in (seed, round, agent), and crash windows rejoin;
///  * ParameterServer::communicate_round is locked bit-identical to
///    communicate_rows for a full-participation round — through the fast
///    path AND through the general weighted path (screening armed but
///    excluding nothing) — RNG stream position and counters included;
///  * partial participation, staleness folding/discard, L2 screening and
///    the trimmed mean match hand-computed references;
///  * the engine with an active all-present plan is bit-identical to the
///    plan-free engine across thread counts {1, 2, 7} on both paper
///    systems, and degraded training is thread-count invariant;
///  * snapshot/restore and save/load mid-campaign with a plan active
///    (straggler rows spanning the boundary) replay the uninterrupted
///    run bit-for-bit.

#include "federated/participation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/error.hpp"
#include "federated/aggregation.hpp"
#include "federated/round_engine.hpp"
#include "federated/server.hpp"
#include "frl/drone_system.hpp"
#include "frl/gridworld_system.hpp"

namespace frlfi {
namespace {

std::vector<float> random_row(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<float> pack_rows(const std::vector<std::vector<float>>& vov) {
  std::vector<float> rows;
  for (const auto& v : vov) rows.insert(rows.end(), v.begin(), v.end());
  return rows;
}

TEST(ParticipationPlan, ValidatesParameters) {
  ParticipationPlan plan;
  plan.active = true;
  plan.dropout_rate = 1.5;
  EXPECT_THROW(validate_participation_plan(plan, 4), Error);
  plan.dropout_rate = 0.1;
  plan.crash_rounds = 0;
  EXPECT_THROW(validate_participation_plan(plan, 4), Error);
  plan.crash_rounds = 2;
  plan.stale_decay = 0.0;
  EXPECT_THROW(validate_participation_plan(plan, 4), Error);
  plan.stale_decay = 0.5;
  plan.byzantine_agents = {7};
  EXPECT_THROW(validate_participation_plan(plan, 4), Error);
  plan.byzantine_agents = {3};
  plan.cadence = 0;
  EXPECT_THROW(validate_participation_plan(plan, 4), Error);
  plan.cadence = 10;
  validate_participation_plan(plan, 4);  // sane plan passes
}

TEST(ParticipationPlan, CadenceSchedulesStaggeredPhase) {
  // Cadence k is a deterministic staggered phase: agent i contributes
  // exactly on rounds with round % k == i % k, so every round sees n/k of
  // an evenly-spread fleet and every agent uploads every k-th round.
  ParticipationPlan plan;
  plan.active = true;
  plan.cadence = 4;
  const Rng base = Rng(5).split(plan.stream_tag);
  for (std::size_t round = 0; round < 12; ++round) {
    std::size_t uploaders = 0;
    for (std::size_t agent = 0; agent < 8; ++agent) {
      const AgentRoundStatus s =
          resolve_agent_round_status(plan, base, round, agent, false);
      if (round % 4 == agent % 4) {
        EXPECT_EQ(s, AgentRoundStatus::Present) << round << "/" << agent;
        ++uploaders;
      } else {
        EXPECT_EQ(s, AgentRoundStatus::Dropped) << round << "/" << agent;
      }
    }
    EXPECT_EQ(uploaders, 2u) << "round " << round;  // n/k = 8/4
  }
  // The fold knob resolves the scheduled skip to Straggler instead, so
  // the skipped upload detours through the staleness buffer.
  plan.cadence_fold_stale = true;
  EXPECT_EQ(resolve_agent_round_status(plan, base, 1, 0, false),
            AgentRoundStatus::Straggler);
  EXPECT_EQ(resolve_agent_round_status(plan, base, 1, 1, false),
            AgentRoundStatus::Present);
}

TEST(ParticipationPlan, CadencePrecedenceAgainstOtherDegradations) {
  const Rng base = Rng(5).split(ParticipationPlan{}.stream_tag);
  // The Byzantine flag overrides cadence: a garbage sender is garbage
  // every round it is up, scheduled or not.
  ParticipationPlan plan;
  plan.active = true;
  plan.cadence = 3;
  EXPECT_EQ(resolve_agent_round_status(plan, base, 1, 0, true),
            AgentRoundStatus::Byzantine);
  // The crash schedule overrides cadence: with certain dropout even an
  // off-cadence agent whose skip would fold stale resolves Dropped.
  plan.dropout_rate = 1.0;
  plan.cadence_fold_stale = true;
  for (std::size_t agent = 0; agent < 3; ++agent)
    EXPECT_EQ(resolve_agent_round_status(plan, base, 2, agent, false),
              AgentRoundStatus::Dropped);
  // Cadence overrides the straggler draw: an off-cadence agent draws
  // nothing (deterministic skip), an on-cadence one draws as usual.
  plan.dropout_rate = 0.0;
  plan.cadence_fold_stale = false;
  plan.straggler_rate = 1.0;
  EXPECT_EQ(resolve_agent_round_status(plan, base, 0, 1, false),
            AgentRoundStatus::Dropped);  // off cadence: no straggler draw
  EXPECT_EQ(resolve_agent_round_status(plan, base, 0, 0, false),
            AgentRoundStatus::Straggler);  // on cadence: draw fires
}

TEST(ParticipationPlan, ResolutionIsDeterministicAndFunctional) {
  ParticipationPlan plan;
  plan.active = true;
  plan.dropout_rate = 0.3;
  plan.straggler_rate = 0.3;
  const Rng base = Rng(99).split(plan.stream_tag);
  for (std::size_t round = 0; round < 20; ++round)
    for (std::size_t agent = 0; agent < 5; ++agent) {
      const AgentRoundStatus a =
          resolve_agent_round_status(plan, base, round, agent, false);
      const AgentRoundStatus b =
          resolve_agent_round_status(plan, base, round, agent, false);
      EXPECT_EQ(a, b) << round << "/" << agent;
    }
  // Zero rates resolve everyone Present; the Byzantine flag overrides.
  ParticipationPlan calm;
  calm.active = true;
  EXPECT_EQ(resolve_agent_round_status(calm, base, 3, 1, false),
            AgentRoundStatus::Present);
  EXPECT_EQ(resolve_agent_round_status(calm, base, 3, 1, true),
            AgentRoundStatus::Byzantine);
}

TEST(ParticipationPlan, CrashWindowKeepsAgentOutThenRejoins) {
  // With crash_rounds = K, a crash draw firing at round r0 keeps the
  // agent Dropped for rounds [r0, r0+K) and it rejoins afterwards
  // (unless a later draw fires).
  ParticipationPlan one;
  one.active = true;
  one.dropout_rate = 0.25;
  const Rng base = Rng(7).split(one.stream_tag);
  ParticipationPlan windowed = one;
  windowed.crash_rounds = 3;
  bool exercised = false;
  for (std::size_t r = 0; r < 40; ++r) {
    const bool crash_draw_fired =
        resolve_agent_round_status(one, base, r, 2, false) ==
        AgentRoundStatus::Dropped;
    if (!crash_draw_fired) continue;
    exercised = true;
    for (std::size_t k = 0; k < 3; ++k)
      EXPECT_EQ(resolve_agent_round_status(windowed, base, r + k, 2, false),
                AgentRoundStatus::Dropped)
          << "round " << r << " + " << k;
  }
  EXPECT_TRUE(exercised);
  // And the agent is not permanently out: some round resolves Present.
  bool present_somewhere = false;
  for (std::size_t r = 0; r < 40; ++r)
    present_somewhere |=
        resolve_agent_round_status(windowed, base, r, 2, false) ==
        AgentRoundStatus::Present;
  EXPECT_TRUE(present_somewhere);
}

TEST(ParticipationPlan, PickByzantineAgents) {
  const auto picked = pick_byzantine_agents(10, 0.3, 42);
  ASSERT_EQ(picked.size(), 3u);
  for (std::size_t i = 1; i < picked.size(); ++i)
    EXPECT_LT(picked[i - 1], picked[i]);  // sorted, distinct
  for (std::size_t a : picked) EXPECT_LT(a, 10u);
  EXPECT_EQ(pick_byzantine_agents(10, 0.3, 42), picked);  // deterministic
  EXPECT_TRUE(pick_byzantine_agents(6, 0.0, 1).empty());
  EXPECT_EQ(pick_byzantine_agents(4, 1.0, 1).size(), 4u);
}

TEST(TrimmedMean, MatchesHandComputedAndRanksNonFiniteLast) {
  // 5 rows, k=1: per coordinate drop min and max, average the middle 3.
  const std::vector<std::vector<float>> rows{
      {1.0f, 10.0f}, {2.0f, -5.0f}, {3.0f, 0.0f}, {4.0f, 1.0f},
      {100.0f, 2.0f}};
  std::vector<const float*> ptrs;
  for (const auto& r : rows) ptrs.push_back(r.data());
  std::vector<float> scratch(rows.size()), out(2);
  trimmed_mean_rows(ptrs.data(), rows.size(), 2, 1, scratch.data(),
                    out.data());
  EXPECT_FLOAT_EQ(out[0], 3.0f);                       // mean(2,3,4)
  EXPECT_FLOAT_EQ(out[1], 1.0f);                       // mean(0,1,2)
  // A NaN row ranks above every finite value: trimmed with the top tail.
  const std::vector<std::vector<float>> with_nan{
      {1.0f}, {2.0f}, {3.0f}, {std::nanf("")}};
  ptrs.clear();
  for (const auto& r : with_nan) ptrs.push_back(r.data());
  scratch.resize(4);
  trimmed_mean_rows(ptrs.data(), 4, 1, 1, scratch.data(), out.data());
  EXPECT_FLOAT_EQ(out[0], 2.5f);  // mean(2,3); NaN and 1 trimmed
  EXPECT_THROW(
      trimmed_mean_rows(ptrs.data(), 2, 1, 1, scratch.data(), out.data()),
      Error);
}

/// Runs one all-present communicate_round and one communicate_rows over
/// identical inputs and expects bit-identical everything.
void expect_full_round_matches_rows(const ScreeningConfig& screening,
                                    double ber) {
  const std::size_t n = 4, dim = 37;
  std::vector<std::vector<float>> uploads;
  for (std::size_t i = 0; i < n; ++i)
    uploads.push_back(random_row(dim, 3100 + i));
  const AlphaSchedule schedule(n, 0.6, 20.0);

  ParameterServer ref(n, dim, schedule);
  ref.channel().set_bit_error_rate(ber);
  Rng ref_rng(11);
  std::vector<float> ref_rows = pack_rows(uploads);
  ref.communicate_rows(ref_rows, ref_rng);

  ParameterServer srv(n, dim, schedule);
  srv.channel().set_bit_error_rate(ber);
  Rng rng(11);
  std::vector<float> rows = pack_rows(uploads);
  const std::vector<AgentRoundStatus> status(n, AgentRoundStatus::Present);
  ParameterServer::RobustRoundOptions opts;
  opts.screening = screening;
  const RoundParticipationReport rep =
      srv.communicate_round(rows, status, opts, rng);

  EXPECT_EQ(rows, ref_rows);
  EXPECT_EQ(srv.consensus(), ref.consensus());
  EXPECT_EQ(srv.round(), ref.round());
  EXPECT_EQ(srv.channel().bytes_sent(), ref.channel().bytes_sent());
  EXPECT_EQ(srv.channel().messages_sent(), ref.channel().messages_sent());
  EXPECT_EQ(srv.channel().bits_corrupted(), ref.channel().bits_corrupted());
  EXPECT_EQ(rng.next_u64(), ref_rng.next_u64());  // stream position
  EXPECT_EQ(rep.present, n);
  EXPECT_EQ(rep.contributors, n);
  EXPECT_TRUE(rep.aggregated);
}

TEST(CommunicateRound, FullParticipationFastPathMatchesCommunicateRows) {
  expect_full_round_matches_rows(ScreeningConfig{}, 0.0);
  expect_full_round_matches_rows(ScreeningConfig{}, 0.01);
}

TEST(CommunicateRound, FullParticipationGeneralPathMatchesCommunicateRows) {
  // Arming the L2 screen with a factor excluding nothing forces the
  // general weighted path — the partial-averaging arithmetic itself must
  // reproduce the synchronous kernel bit-for-bit when every weight is 1.
  ScreeningConfig screening;
  screening.l2_norm = true;
  screening.l2_factor = 1e9;
  expect_full_round_matches_rows(screening, 0.0);
  expect_full_round_matches_rows(screening, 0.01);
}

/// Test-side replica of the degraded combine (same float expressions in
/// the same order; -ffp-contract=off makes both sides bit-stable).
std::vector<float> reference_combine(
    const std::vector<const float*>& cand, const std::vector<float>& weights,
    const float* self, bool self_on_time, std::size_t dim, double alpha) {
  std::vector<float> tot(dim, 0.0f);
  for (std::size_t j = 0; j < cand.size(); ++j)
    for (std::size_t d = 0; d < dim; ++d) tot[d] += weights[j] * cand[j][d];
  double weight_sum = 0.0;
  for (float w : weights) weight_sum += static_cast<double>(w);
  const float wi = self_on_time ? 1.0f : 0.0f;
  const double peers = weight_sum - static_cast<double>(wi);
  const auto alpha_f = static_cast<float>(alpha);
  std::vector<float> dst(dim);
  if (peers > 0.0) {
    const auto beta = static_cast<float>((1.0 - alpha) / peers);
    for (std::size_t d = 0; d < dim; ++d)
      dst[d] = alpha_f * self[d] + beta * (tot[d] - wi * self[d]);
  } else {
    for (std::size_t d = 0; d < dim; ++d) dst[d] = self[d];
  }
  return dst;
}

TEST(CommunicateRound, PartialParticipationMatchesHandComputedAverage) {
  // Agent 1 dropped: its row must be ignored on uplink, aggregation and
  // downlink, and the present rows average only over themselves.
  const std::size_t n = 4, dim = 6;
  std::vector<std::vector<float>> uploads;
  for (std::size_t i = 0; i < n; ++i)
    uploads.push_back(random_row(dim, 4200 + i));
  const AlphaSchedule schedule(n, 0.6, 20.0);
  ParameterServer srv(n, dim, schedule);  // clean channel: quantize only
  Rng rng(13);
  std::vector<float> rows = pack_rows(uploads);
  std::vector<AgentRoundStatus> status(n, AgentRoundStatus::Present);
  status[1] = AgentRoundStatus::Dropped;
  const std::vector<float> before = rows;
  const RoundParticipationReport rep = srv.communicate_round(
      rows, status, ParameterServer::RobustRoundOptions{}, rng);

  EXPECT_EQ(rep.present, 3u);
  EXPECT_EQ(rep.dropped, 1u);
  EXPECT_EQ(rep.contributors, 3u);
  // Dropped row untouched in the caller's matrix.
  for (std::size_t d = 0; d < dim; ++d)
    EXPECT_EQ(rows[1 * dim + d], before[1 * dim + d]);

  // Reference: quantize the present uploads (clean transmit), combine,
  // quantize the downlink.
  CommChannel ch(0.0);
  Rng ref_rng(13);
  std::vector<std::vector<float>> sent(n);
  for (std::size_t i = 0; i < n; ++i)
    if (i != 1) sent[i] = ch.transmit(uploads[i], ref_rng);
  std::vector<const float*> cand;
  std::vector<float> weights;
  for (std::size_t i = 0; i < n; ++i)
    if (i != 1) {
      cand.push_back(sent[i].data());
      weights.push_back(1.0f);
    }
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 1) continue;
    const std::vector<float> agg = reference_combine(
        cand, weights, sent[i].data(), true, dim, schedule.at(0));
    const std::vector<float> down = ch.transmit(agg, ref_rng);
    for (std::size_t d = 0; d < dim; ++d)
      EXPECT_EQ(rows[i * dim + d], down[d]) << "agent " << i << " dim " << d;
  }
}

TEST(CommunicateRound, StalenessBufferFoldsLateRowsWithDecay) {
  const std::size_t n = 3, dim = 5;
  std::vector<std::vector<float>> uploads;
  for (std::size_t i = 0; i < n; ++i)
    uploads.push_back(random_row(dim, 5000 + i));
  const AlphaSchedule schedule(n, 0.6, 20.0);
  ParameterServer srv(n, dim, schedule);
  Rng rng(17);
  ParameterServer::RobustRoundOptions opts;
  opts.straggler_lag = 1;
  opts.stale_decay = 0.5;

  // Round 0: agent 2 straggles — no fold yet, one pending upload.
  std::vector<float> rows = pack_rows(uploads);
  std::vector<AgentRoundStatus> status(n, AgentRoundStatus::Present);
  status[2] = AgentRoundStatus::Straggler;
  RoundParticipationReport rep0 = srv.communicate_round(rows, status, opts, rng);
  EXPECT_EQ(rep0.stragglers, 1u);
  EXPECT_EQ(rep0.stale_folded, 0u);
  EXPECT_EQ(rep0.contributors, 2u);
  ASSERT_EQ(srv.pending_uploads().size(), 1u);
  EXPECT_EQ(srv.pending_uploads()[0].agent, 2u);
  EXPECT_EQ(srv.pending_uploads()[0].deliver_round, 1u);
  EXPECT_FLOAT_EQ(srv.pending_uploads()[0].weight, 0.5f);
  const std::vector<float> stale_payload = srv.pending_uploads()[0].data;

  // Round 1: everyone present; the stale row folds in at weight 0.5 and
  // leaves the buffer.
  std::vector<std::vector<float>> uploads1;
  for (std::size_t i = 0; i < n; ++i)
    uploads1.push_back(random_row(dim, 6000 + i));
  std::vector<float> rows1 = pack_rows(uploads1);
  const std::vector<AgentRoundStatus> all_present(n,
                                                  AgentRoundStatus::Present);
  RoundParticipationReport rep1 =
      srv.communicate_round(rows1, all_present, opts, rng);
  EXPECT_EQ(rep1.stale_folded, 1u);
  EXPECT_EQ(rep1.contributors, 4u);  // 3 on-time + 1 stale
  EXPECT_TRUE(srv.pending_uploads().empty());

  // The fold actually changed the aggregate: round 1 on a fresh server
  // without the pending row (same round index, clean channel so the RNG
  // seed is immaterial) produces different bits.
  ParameterServer fresh(n, dim, schedule);
  fresh.set_round(1);
  Rng fresh_rng(1234);
  std::vector<float> rows1b = pack_rows(uploads1);
  fresh.communicate_round(rows1b, all_present, opts, fresh_rng);
  EXPECT_NE(rows1, rows1b);

  // And a mirror server restored from the captured pending state replays
  // round 1 bit-for-bit — the buffer is sufficient training state.
  ParameterServer mirror(n, dim, schedule);
  mirror.set_round(1);
  ParameterServer::PendingUpload carried;
  carried.agent = 2;
  carried.deliver_round = 1;
  carried.weight = 0.5f;
  carried.data = stale_payload;
  mirror.set_pending_uploads({carried});
  Rng mirror_rng(4321);
  std::vector<float> rows1c = pack_rows(uploads1);
  mirror.communicate_round(rows1c, all_present, opts, mirror_rng);
  EXPECT_EQ(rows1c, rows1);
  EXPECT_TRUE(mirror.pending_uploads().empty());

  // Discard: lag beyond max_staleness never enters the buffer.
  ParameterServer srv2(n, dim, schedule);
  opts.straggler_lag = 5;
  opts.max_staleness = 4;
  Rng rng2(19);
  std::vector<float> rows2 = pack_rows(uploads);
  RoundParticipationReport rep2 =
      srv2.communicate_round(rows2, status, opts, rng2);
  EXPECT_EQ(rep2.stale_discarded, 1u);
  EXPECT_TRUE(srv2.pending_uploads().empty());
}

TEST(CommunicateRound, L2ScreenExcludesNormOutlier) {
  const std::size_t n = 4, dim = 8;
  std::vector<std::vector<float>> uploads;
  for (std::size_t i = 0; i < n; ++i)
    uploads.push_back(random_row(dim, 7000 + i));
  // Agent 3 uploads garbage far outside the honest norm band.
  for (auto& v : uploads[3]) v = 80.0f;
  const AlphaSchedule schedule(n, 0.6, 20.0);
  ParameterServer srv(n, dim, schedule);
  Rng rng(23);
  std::vector<float> rows = pack_rows(uploads);
  std::vector<AgentRoundStatus> status(n, AgentRoundStatus::Present);
  status[3] = AgentRoundStatus::Byzantine;
  ParameterServer::RobustRoundOptions opts;
  opts.screening.l2_norm = true;
  opts.screening.l2_factor = 3.0;
  const RoundParticipationReport rep =
      srv.communicate_round(rows, status, opts, rng);
  EXPECT_EQ(rep.byzantine, 1u);
  EXPECT_EQ(rep.screened_out, 1u);
  EXPECT_EQ(rep.contributors, 3u);

  // The screened agent still receives a downlink, blended from honest
  // rows only (its own row is out of the total, weight 0).
  CommChannel ch(0.0);
  Rng ref_rng(23);
  std::vector<std::vector<float>> sent(n);
  for (std::size_t i = 0; i < n; ++i) sent[i] = ch.transmit(uploads[i], ref_rng);
  std::vector<const float*> cand;
  std::vector<float> weights;
  for (std::size_t i = 0; i < 3; ++i) {
    cand.push_back(sent[i].data());
    weights.push_back(1.0f);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<float> agg = reference_combine(
        cand, weights, sent[i].data(), i != 3, dim, schedule.at(0));
    const std::vector<float> down = ch.transmit(agg, ref_rng);
    for (std::size_t d = 0; d < dim; ++d)
      EXPECT_EQ(rows[i * dim + d], down[d]) << "agent " << i << " dim " << d;
  }
}

TEST(CommunicateRound, TrimmedMeanReplacesPeerAverage) {
  const std::size_t n = 5, dim = 4;
  std::vector<std::vector<float>> uploads;
  for (std::size_t i = 0; i < n; ++i)
    uploads.push_back(random_row(dim, 8000 + i));
  for (auto& v : uploads[4]) v = 100.0f;  // outlier the trim should drop
  const AlphaSchedule schedule(n, 0.6, 20.0);
  ParameterServer srv(n, dim, schedule);
  Rng rng(29);
  std::vector<float> rows = pack_rows(uploads);
  const std::vector<AgentRoundStatus> status(n, AgentRoundStatus::Present);
  ParameterServer::RobustRoundOptions opts;
  opts.screening.trimmed_mean = true;
  opts.screening.trim_k = 1;
  srv.communicate_round(rows, status, opts, rng);

  CommChannel ch(0.0);
  Rng ref_rng(29);
  std::vector<std::vector<float>> sent(n);
  for (std::size_t i = 0; i < n; ++i) sent[i] = ch.transmit(uploads[i], ref_rng);
  // Reference trimmed mean (same float ops as trimmed_mean_rows).
  std::vector<float> tm(dim);
  const auto inv = static_cast<float>(1.0 / static_cast<double>(n - 2));
  for (std::size_t d = 0; d < dim; ++d) {
    std::vector<float> col;
    for (std::size_t i = 0; i < n; ++i) col.push_back(sent[i][d]);
    std::sort(col.begin(), col.end());
    float acc = 0.0f;
    for (std::size_t j = 1; j + 1 < n; ++j) acc += col[j];
    tm[d] = acc * inv;
  }
  const double alpha = schedule.at(0);
  const auto alpha_f = static_cast<float>(alpha);
  const auto om = static_cast<float>(1.0 - alpha);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> agg(dim);
    for (std::size_t d = 0; d < dim; ++d)
      agg[d] = alpha_f * sent[i][d] + om * tm[d];
    const std::vector<float> down = ch.transmit(agg, ref_rng);
    for (std::size_t d = 0; d < dim; ++d)
      EXPECT_EQ(rows[i * dim + d], down[d]) << "agent " << i << " dim " << d;
  }
}

TEST(CommunicateRound, ValidatesPendingUploads) {
  ParameterServer srv(2, 3, AlphaSchedule(2, 0.6));
  ParameterServer::PendingUpload bad;
  bad.agent = 5;
  bad.data = {1.0f, 2.0f, 3.0f};
  EXPECT_THROW(srv.set_pending_uploads({bad}), Error);
  ParameterServer::PendingUpload wrong_dim;
  wrong_dim.agent = 0;
  wrong_dim.data = {1.0f};
  EXPECT_THROW(srv.set_pending_uploads({wrong_dim}), Error);
}

GridWorldFrlSystem::Config grid_config(std::size_t n_agents,
                                       std::size_t threads) {
  GridWorldFrlSystem::Config cfg;
  cfg.n_agents = n_agents;
  cfg.eps_span = 420;
  cfg.channel_ber = 1e-3;
  cfg.threads = threads;
  return cfg;
}

std::vector<std::vector<float>> grid_params(GridWorldFrlSystem& sys,
                                            std::size_t n) {
  std::vector<std::vector<float>> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(sys.agent_network(i).flat_parameters());
  return out;
}

TEST(ParticipationEngine, FullParticipationPlanIsBitIdenticalToInactive) {
  // The acceptance lock: an active plan resolving to all-present with
  // screening off must not change a single bit vs the plan-free engine —
  // RNG stream position included (checked by training past the compare
  // point) — at thread counts 1, 2 and 7.
  GridWorldFrlSystem reference(grid_config(4, 1), 77);
  reference.train(30);
  const auto ref_params = grid_params(reference, 4);
  const std::size_t ref_bytes = reference.communication_bytes();
  reference.train(10);
  const auto ref_params_cont = grid_params(reference, 4);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    GridWorldFrlSystem sys(grid_config(4, threads), 77);
    ParticipationPlan plan;
    plan.active = true;  // zero rates, no Byzantine set, screening off
    sys.set_participation_plan(plan);
    sys.train(30);
    EXPECT_EQ(grid_params(sys, 4), ref_params) << threads << " threads";
    EXPECT_EQ(sys.communication_bytes(), ref_bytes);
    sys.train(10);  // diverges here if the plan consumed training RNG
    EXPECT_EQ(grid_params(sys, 4), ref_params_cont) << threads << " threads";
    EXPECT_EQ(sys.communication_bytes(), reference.communication_bytes());
    EXPECT_EQ(sys.participation_stats().rounds, 40u);
    EXPECT_EQ(sys.participation_stats().present, 160u);
  }
}

DroneFrlSystem::Config drone_config(std::size_t n_drones,
                                    std::size_t threads) {
  DroneFrlSystem::Config cfg;
  cfg.n_drones = n_drones;
  cfg.imitation_episodes = 8;
  cfg.channel_ber = 1e-3;
  cfg.threads = threads;
  return cfg;
}

TEST(ParticipationEngine, DroneFullParticipationPlanIsBitIdentical) {
  DroneFrlSystem reference(drone_config(3, 1), 57);
  reference.train(8);
  std::vector<std::vector<float>> ref_params;
  for (std::size_t i = 0; i < 3; ++i)
    ref_params.push_back(reference.drone_network(i).flat_parameters());

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    DroneFrlSystem sys(drone_config(3, threads), 57);
    ParticipationPlan plan;
    plan.active = true;
    sys.set_participation_plan(plan);
    sys.train(8);
    std::vector<std::vector<float>> params;
    for (std::size_t i = 0; i < 3; ++i)
      params.push_back(sys.drone_network(i).flat_parameters());
    EXPECT_EQ(params, ref_params) << threads << " threads";
    EXPECT_EQ(sys.communication_bytes(), reference.communication_bytes());
  }
}

/// A busy degraded plan exercising dropout windows, stragglers and a
/// screened Byzantine agent at once.
ParticipationPlan busy_plan() {
  ParticipationPlan plan;
  plan.active = true;
  plan.dropout_rate = 0.2;
  plan.crash_rounds = 2;
  plan.straggler_rate = 0.3;
  plan.straggler_lag = 2;
  plan.stale_decay = 0.5;
  plan.max_staleness = 4;
  plan.byzantine_agents = {1};
  plan.screening.l2_norm = true;
  plan.screening.l2_factor = 3.0;
  return plan;
}

TEST(ParticipationEngine, DegradedTrainingIsThreadCountInvariant) {
  std::vector<std::vector<float>> serial;
  ParticipationStats serial_stats;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    GridWorldFrlSystem sys(grid_config(4, threads), 101);
    sys.set_participation_plan(busy_plan());
    sys.train(30);
    const auto params = grid_params(sys, 4);
    const ParticipationStats& stats = sys.participation_stats();
    if (threads == 1) {
      serial = params;
      serial_stats = stats;
      // The plan actually degrades something at this seed.
      EXPECT_GT(stats.dropped + stats.stragglers, 0u);
      EXPECT_GT(stats.byzantine, 0u);
    } else {
      EXPECT_EQ(params, serial) << threads << " threads";
      EXPECT_EQ(stats.rounds, serial_stats.rounds);
      EXPECT_EQ(stats.present, serial_stats.present);
      EXPECT_EQ(stats.dropped, serial_stats.dropped);
      EXPECT_EQ(stats.stragglers, serial_stats.stragglers);
      EXPECT_EQ(stats.byzantine, serial_stats.byzantine);
      EXPECT_EQ(stats.stale_folded, serial_stats.stale_folded);
      EXPECT_EQ(stats.screened_out, serial_stats.screened_out);
    }
  }
}

TEST(ParticipationEngine, CadenceOnePlanIsBitIdenticalToPlanFree) {
  // The cadence acceptance lock: cadence = 1 schedules every agent every
  // round and must not change a single bit vs the plan-free engine on
  // either paper system — RNG stream position included (the training
  // continues past the first compare point) — at 1, 2 and 7 threads.
  // The fold knob is irrelevant at cadence 1 and must stay inert too.
  GridWorldFrlSystem grid_ref(grid_config(4, 1), 88);
  grid_ref.train(30);
  const auto grid_ref_params = grid_params(grid_ref, 4);
  grid_ref.train(10);
  const auto grid_ref_cont = grid_params(grid_ref, 4);

  DroneFrlSystem drone_ref(drone_config(3, 1), 58);
  drone_ref.train(8);
  std::vector<std::vector<float>> drone_ref_params;
  for (std::size_t i = 0; i < 3; ++i)
    drone_ref_params.push_back(drone_ref.drone_network(i).flat_parameters());

  ParticipationPlan plan;
  plan.active = true;
  plan.cadence = 1;
  plan.cadence_fold_stale = true;

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    GridWorldFrlSystem grid(grid_config(4, threads), 88);
    grid.set_participation_plan(plan);
    grid.train(30);
    EXPECT_EQ(grid_params(grid, 4), grid_ref_params) << threads << " threads";
    grid.train(10);
    EXPECT_EQ(grid_params(grid, 4), grid_ref_cont) << threads << " threads";
    EXPECT_EQ(grid.communication_bytes(), grid_ref.communication_bytes());

    DroneFrlSystem drone(drone_config(3, threads), 58);
    drone.set_participation_plan(plan);
    drone.train(8);
    std::vector<std::vector<float>> params;
    for (std::size_t i = 0; i < 3; ++i)
      params.push_back(drone.drone_network(i).flat_parameters());
    EXPECT_EQ(params, drone_ref_params) << threads << " threads";
    EXPECT_EQ(drone.communication_bytes(), drone_ref.communication_bytes());
  }
}

TEST(ParticipationEngine, CadenceTrainingIsThreadInvariantAndThinsUploads) {
  // A sparse cadence rides along with the full busy plan: training stays
  // bit-identical across thread counts, the per-round upload volume drops
  // (cadence is the fleet bytes/round lever), and the skipped rounds show
  // up as scheduled drops in the stats.
  ParticipationPlan sparse = busy_plan();
  sparse.cadence = 2;

  std::vector<std::vector<float>> serial;
  ParticipationStats serial_stats;
  std::size_t serial_bytes = 0;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    GridWorldFrlSystem sys(grid_config(4, threads), 101);
    sys.set_participation_plan(sparse);
    sys.train(30);
    const auto params = grid_params(sys, 4);
    const ParticipationStats& stats = sys.participation_stats();
    if (threads == 1) {
      serial = params;
      serial_stats = stats;
      serial_bytes = sys.communication_bytes();
    } else {
      EXPECT_EQ(params, serial) << threads << " threads";
      EXPECT_EQ(stats.rounds, serial_stats.rounds);
      EXPECT_EQ(stats.present, serial_stats.present);
      EXPECT_EQ(stats.dropped, serial_stats.dropped);
      EXPECT_EQ(stats.stragglers, serial_stats.stragglers);
      EXPECT_EQ(stats.byzantine, serial_stats.byzantine);
      EXPECT_EQ(sys.communication_bytes(), serial_bytes);
    }
  }

  // Same seed and plan minus the cadence: the dense run uploads more and
  // sees more present agents — the cadence genuinely thinned the rounds.
  GridWorldFrlSystem dense(grid_config(4, 1), 101);
  dense.set_participation_plan(busy_plan());
  dense.train(30);
  EXPECT_LT(serial_bytes, dense.communication_bytes());
  EXPECT_LT(serial_stats.present, dense.participation_stats().present);
  EXPECT_GT(serial_stats.dropped, dense.participation_stats().dropped);
}

TEST(ParticipationEngine, RoundObserverSeesEveryRound) {
  GridWorldFrlSystem sys(grid_config(4, 1), 303);
  sys.set_participation_plan(busy_plan());
  std::vector<RoundParticipationReport> reports;
  sys.set_round_observer(
      [&](const RoundParticipationReport& rep) { reports.push_back(rep); });
  sys.train(12);
  ASSERT_EQ(reports.size(), 12u);  // comm_interval 1
  const ParticipationStats& stats = sys.participation_stats();
  std::size_t present = 0, dropped = 0, stragglers = 0, byz = 0;
  for (std::size_t r = 0; r < reports.size(); ++r) {
    EXPECT_EQ(reports[r].round, r);
    ASSERT_EQ(reports[r].status.size(), 4u);
    EXPECT_EQ(reports[r].status[1], AgentRoundStatus::Byzantine);
    present += reports[r].present;
    dropped += reports[r].dropped;
    stragglers += reports[r].stragglers;
    byz += reports[r].byzantine;
  }
  EXPECT_EQ(stats.rounds, 12u);
  EXPECT_EQ(stats.present, present);
  EXPECT_EQ(stats.dropped, dropped);
  EXPECT_EQ(stats.stragglers, stragglers);
  EXPECT_EQ(stats.byzantine, byz);

  // Inactive plans still report (all-present) rounds to the observer.
  GridWorldFrlSystem calm(grid_config(2, 1), 304);
  std::size_t calm_rounds = 0;
  calm.set_round_observer([&](const RoundParticipationReport& rep) {
    ++calm_rounds;
    EXPECT_EQ(rep.present, 2u);
    EXPECT_TRUE(rep.aggregated);
  });
  calm.train(5);
  EXPECT_EQ(calm_rounds, 5u);
}

TEST(ParticipationEngine, SnapshotRestoreMidCampaignReplaysBitForBit) {
  // Snapshot while straggler uploads are in flight: the resumed run must
  // replay the uninterrupted one exactly, which requires the staleness
  // buffer to travel with the snapshot.
  GridWorldFrlSystem sys(grid_config(4, 2), 505);
  sys.set_participation_plan(busy_plan());
  sys.train(21);
  const auto snap = sys.snapshot();
  ASSERT_FALSE(snap.engine.pending_uploads.empty())
      << "seed must leave a straggler row spanning the snapshot";
  sys.train(15);
  const auto direct = grid_params(sys, 4);
  const ParticipationStats direct_stats = sys.participation_stats();

  sys.restore(snap);
  EXPECT_EQ(sys.episode(), 21u);
  sys.train(15);
  EXPECT_EQ(grid_params(sys, 4), direct);
  // Stats keep accumulating across restore (they describe the session,
  // not the timeline) — but the post-restore rounds resolve identically,
  // so the totals grow by the same amounts.
  EXPECT_EQ(sys.participation_stats().rounds, direct_stats.rounds + 15u);
}

TEST(ParticipationEngine, SaveLoadRoundTripResumesDegradedCampaign) {
  GridWorldFrlSystem sys(grid_config(4, 1), 505);
  sys.set_participation_plan(busy_plan());
  sys.train(21);
  std::stringstream buf;
  sys.save(buf);
  sys.train(15);
  const auto direct = grid_params(sys, 4);

  GridWorldFrlSystem loaded(grid_config(4, 1), 505);
  loaded.set_participation_plan(busy_plan());
  loaded.load(buf);
  EXPECT_EQ(loaded.episode(), 21u);
  loaded.train(15);
  EXPECT_EQ(grid_params(loaded, 4), direct);
}

TEST(ParticipationEngine, MitigationStateSurvivesSnapshotRestore) {
  // With mitigation enabled, restore + retrain must replay the monitor's
  // detection timeline — the baseline history now travels with the
  // snapshot instead of resetting.
  GridWorldFrlSystem sys(grid_config(4, 1), 606);
  TrainingFaultPlan fault;
  fault.active = true;
  fault.spec.site = FaultSite::AgentFault;
  fault.spec.agent_index = 2;
  fault.spec.ber = 0.05;
  fault.spec.episode = 24;
  sys.set_fault_plan(fault);
  MitigationPlan mit;
  mit.enabled = true;
  mit.detector.drop_percent = 25.0;
  mit.detector.consecutive_episodes = 4;
  mit.detector.warmup_episodes = 3;
  sys.set_mitigation(mit);

  sys.train(20);  // monitor warm, baselines established, fault not yet hit
  const auto snap = sys.snapshot();
  ASSERT_TRUE(snap.engine.has_mitigation_state);
  sys.train(20);  // fault fires at 24, recovery happens (or not) — either
                  // way the timeline must replay
  const auto direct = grid_params(sys, 4);
  const MitigationStats direct_stats = sys.mitigation_stats();

  sys.restore(snap);
  sys.train(20);
  EXPECT_EQ(grid_params(sys, 4), direct);
  EXPECT_EQ(sys.mitigation_stats().agent_recoveries,
            direct_stats.agent_recoveries);
  EXPECT_EQ(sys.mitigation_stats().server_recoveries,
            direct_stats.server_recoveries);
  EXPECT_EQ(sys.mitigation_stats().checkpoints_taken,
            direct_stats.checkpoints_taken);
}

}  // namespace
}  // namespace frlfi
