#include "perfmodel/uav.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(UavSpec, PresetsMatchPaperPlatforms) {
  const UavSpec air = UavSpec::airsim_drone();
  EXPECT_NEAR(air.mass_kg, 1.652, 1e-9);            // 1652 g
  EXPECT_NEAR(air.battery_wh, 6.25 * 11.1, 1e-9);   // 6250 mAh
  const UavSpec spark = UavSpec::dji_spark();
  EXPECT_NEAR(spark.mass_kg, 0.300, 1e-9);          // 300 g
  EXPECT_NEAR(spark.battery_wh, 1.48 * 11.4, 1e-9); // 1480 mAh
}

TEST(ProtectionScheme, Presets) {
  EXPECT_EQ(ProtectionScheme::baseline().compute_replicas, 1);
  EXPECT_EQ(ProtectionScheme::dmr().compute_replicas, 2);
  EXPECT_EQ(ProtectionScheme::tmr().compute_replicas, 3);
  EXPECT_NEAR(ProtectionScheme::detection().runtime_overhead, 0.027, 1e-9);
}

TEST(Flight, BaselineIsFiniteAndPositive) {
  const FlightPerformance p =
      evaluate_flight(UavSpec::airsim_drone(), ProtectionScheme::baseline());
  EXPECT_GT(p.safe_velocity, 1.0);
  EXPECT_GT(p.safe_flight_distance_m, 10.0);
  EXPECT_GT(p.endurance_s, 60.0);
  EXPECT_GT(p.max_accel, 1.0);
}

TEST(Flight, MoreReplicasMonotonicallyWorse) {
  for (const UavSpec& uav : {UavSpec::airsim_drone(), UavSpec::dji_spark()}) {
    const double base =
        evaluate_flight(uav, ProtectionScheme::baseline()).safe_flight_distance_m;
    const double det =
        evaluate_flight(uav, ProtectionScheme::detection()).safe_flight_distance_m;
    const double dmr =
        evaluate_flight(uav, ProtectionScheme::dmr()).safe_flight_distance_m;
    const double tmr =
        evaluate_flight(uav, ProtectionScheme::tmr()).safe_flight_distance_m;
    EXPECT_GE(base, det);
    EXPECT_GT(det, dmr);
    EXPECT_GT(dmr, tmr);
  }
}

TEST(Flight, DetectionDegradationIsNegligible) {
  // The paper's claim: <2.7% runtime overhead, negligible performance loss.
  for (const UavSpec& uav : {UavSpec::airsim_drone(), UavSpec::dji_spark()}) {
    const double deg = distance_degradation_pct(
        uav, ProtectionScheme::detection(), ProtectionScheme::baseline());
    EXPECT_GE(deg, 0.0);
    EXPECT_LT(deg, 2.0);
  }
}

TEST(Flight, TmrHurtsMicroUavFarMoreThanMiniUav) {
  // Fig. 9's punchline: hardware redundancy is catastrophic for the Spark
  // (paper: -87.8% vs detection) but tolerable for the mini-UAV (-9.3%).
  const double tmr_air = distance_degradation_pct(
      UavSpec::airsim_drone(), ProtectionScheme::tmr(),
      ProtectionScheme::detection());
  const double tmr_spark = distance_degradation_pct(
      UavSpec::dji_spark(), ProtectionScheme::tmr(),
      ProtectionScheme::detection());
  EXPECT_GT(tmr_spark, 60.0);
  EXPECT_LT(tmr_air, 30.0);
  EXPECT_GT(tmr_spark, tmr_air * 3);
}

TEST(Flight, RedundancyIncreasesPower) {
  const UavSpec uav = UavSpec::airsim_drone();
  const double p1 =
      evaluate_flight(uav, ProtectionScheme::baseline()).total_power_w;
  const double p3 = evaluate_flight(uav, ProtectionScheme::tmr()).total_power_w;
  EXPECT_GT(p3, p1 + 15.0);  // at least the two extra boards
}

TEST(Flight, RuntimeOverheadLengthensLatency) {
  const UavSpec uav = UavSpec::airsim_drone();
  const double l0 =
      evaluate_flight(uav, ProtectionScheme::baseline()).compute_latency_s;
  const double ld =
      evaluate_flight(uav, ProtectionScheme::detection()).compute_latency_s;
  EXPECT_NEAR(ld, l0 * 1.027, 1e-9);
}

TEST(Flight, GroundedDroneHasZeroVelocity) {
  UavSpec heavy = UavSpec::dji_spark();
  heavy.board_mass_kg = 1.0;  // one extra board exceeds the thrust margin
  const FlightPerformance p = evaluate_flight(heavy, ProtectionScheme::dmr());
  EXPECT_EQ(p.safe_velocity, 0.0);
  EXPECT_EQ(p.safe_flight_distance_m, 0.0);
}

TEST(Flight, EnduranceLimitsLongMissions) {
  const UavSpec uav = UavSpec::dji_spark();
  const FlightPerformance p =
      evaluate_flight(uav, ProtectionScheme::baseline(), 1e9);
  EXPECT_NEAR(p.safe_flight_distance_m, p.safe_velocity * p.endurance_s, 1e-6);
}

TEST(Flight, Validation) {
  ProtectionScheme bad = ProtectionScheme::baseline();
  bad.compute_replicas = 0;
  EXPECT_THROW(evaluate_flight(UavSpec::airsim_drone(), bad), Error);
  EXPECT_THROW(
      evaluate_flight(UavSpec::airsim_drone(), ProtectionScheme::baseline(), 0.0),
      Error);
}

/// Property: degradation vs baseline grows with replica count on any
/// platform and stays within [0, 100].
class ReplicaProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReplicaProperty, DegradationMonotoneBounded) {
  ProtectionScheme s{"custom", GetParam(), 0.03};
  ProtectionScheme s_next{"custom+1", GetParam() + 1, 0.03};
  for (const UavSpec& uav : {UavSpec::airsim_drone(), UavSpec::dji_spark()}) {
    const double d = distance_degradation_pct(uav, s, ProtectionScheme::baseline());
    const double d_next =
        distance_degradation_pct(uav, s_next, ProtectionScheme::baseline());
    EXPECT_LE(d, d_next + 1e-9);
    EXPECT_GE(d, -1e-9);
    EXPECT_LE(d_next, 100.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Replicas, ReplicaProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace frlfi
