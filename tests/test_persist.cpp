#include "frl/persist.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "frl/drone_system.hpp"
#include "frl/gridworld_system.hpp"

namespace frlfi {
namespace {

TEST(Persist, PrimitivesRoundTrip) {
  std::stringstream ss;
  persist::write_header(ss, 3);
  persist::write_u64(ss, 0xDEADBEEFULL);
  persist::write_floats(ss, {1.0f, -2.5f, 0.125f});
  EXPECT_EQ(persist::read_header(ss), 3u);
  EXPECT_EQ(persist::read_u64(ss), 0xDEADBEEFULL);
  EXPECT_EQ(persist::read_floats(ss), (std::vector<float>{1.0f, -2.5f, 0.125f}));
}

TEST(Persist, RejectsGarbageHeader) {
  std::stringstream ss("this is not a state file");
  EXPECT_THROW(persist::read_header(ss), Error);
}

TEST(Persist, RejectsTruncatedStream) {
  std::stringstream ss;
  persist::write_header(ss, 1);
  persist::write_u64(ss, 100);  // claims 100 floats, provides none
  persist::read_header(ss);
  EXPECT_THROW(persist::read_floats(ss), Error);
}

TEST(Persist, GridWorldSaveLoadRoundTrip) {
  GridWorldFrlSystem::Config cfg;
  cfg.n_agents = 4;
  GridWorldFrlSystem sys(cfg, 5);
  sys.train(60);
  std::stringstream ss;
  sys.save(ss);

  GridWorldFrlSystem other(cfg, 999);  // different seed: different weights
  other.load(ss);
  EXPECT_EQ(other.episode(), 60u);
  EXPECT_EQ(other.agent_network(2).flat_parameters(),
            sys.agent_network(2).flat_parameters());
}

TEST(Persist, GridWorldLoadedSystemContinuesTraining) {
  GridWorldFrlSystem::Config cfg;
  cfg.n_agents = 4;
  GridWorldFrlSystem a(cfg, 6);
  a.train(40);
  std::stringstream ss;
  a.save(ss);
  a.train(20);
  GridWorldFrlSystem b(cfg, 6);
  b.load(ss);
  b.train(20);
  EXPECT_EQ(a.agent_network(0).flat_parameters(),
            b.agent_network(0).flat_parameters());
}

TEST(Persist, GridWorldRejectsAgentCountMismatch) {
  GridWorldFrlSystem::Config small;
  small.n_agents = 2;
  GridWorldFrlSystem sys(small, 7);
  std::stringstream ss;
  sys.save(ss);
  GridWorldFrlSystem::Config big;
  big.n_agents = 4;
  GridWorldFrlSystem other(big, 7);
  EXPECT_THROW(other.load(ss), Error);
}

TEST(Persist, DroneSaveLoadRoundTrip) {
  DroneFrlSystem::Config cfg;
  cfg.n_drones = 2;
  cfg.imitation_episodes = 20;
  DroneFrlSystem sys(cfg, 8);
  sys.train(4);
  std::stringstream ss;
  sys.save(ss);

  DroneFrlSystem other(cfg, 8);
  other.load(ss);
  EXPECT_EQ(other.episode(), 4u);
  EXPECT_EQ(other.drone_network(1).flat_parameters(),
            sys.drone_network(1).flat_parameters());
  // Baseline state restored too: continued training replays identically.
  sys.train(4);
  other.train(4);
  EXPECT_EQ(other.drone_network(0).flat_parameters(),
            sys.drone_network(0).flat_parameters());
}

}  // namespace
}  // namespace frlfi
