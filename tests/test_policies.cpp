#include "frl/policies.hpp"

#include <gtest/gtest.h>

namespace frlfi {
namespace {

TEST(GridworldPolicy, TopologyAndDeterminism) {
  Rng a(1), b(1);
  Network na = make_gridworld_policy(a);
  Network nb = make_gridworld_policy(b);
  EXPECT_EQ(na.flat_parameters(), nb.flat_parameters());
  EXPECT_EQ(na.layer_count(), 5u);
  const Tensor y = na.forward(Tensor({10}, 0.5f));
  EXPECT_EQ(y.size(), 4u);
}

TEST(GridworldPolicy, ParameterCount) {
  Rng rng(2);
  Network net = make_gridworld_policy(rng);
  // 10*32+32 + 32*32+32 + 32*4+4
  EXPECT_EQ(net.parameter_count(), 352u + 1056u + 132u);
}

TEST(DronePolicy, TopologyMatchesPaper) {
  // 3 Conv + 2 FC, 25 action logits from the (3,18,32) camera image.
  Rng rng(3);
  Network net = make_drone_policy(rng);
  EXPECT_EQ(net.layer_count(), 10u);  // convs, relus, flatten, denses
  const Tensor y = net.forward(Tensor({3, 18, 32}, 0.2f));
  EXPECT_EQ(y.size(), 25u);
}

TEST(DronePolicy, DifferentSeedsDifferentWeights) {
  Rng a(1), b(2);
  EXPECT_NE(make_drone_policy(a).flat_parameters(),
            make_drone_policy(b).flat_parameters());
}

TEST(DronePolicy, BackwardRunsThroughConvStack) {
  Rng rng(4);
  Network net = make_drone_policy(rng);
  net.forward(Tensor({3, 18, 32}, 0.1f));
  const Tensor g = net.backward(Tensor({25}, 1.0f));
  EXPECT_EQ(g.shape(), (std::vector<std::size_t>{3, 18, 32}));
}

}  // namespace
}  // namespace frlfi
