/// \file test_quant_forward.cpp
/// The int8-native inference plane, end to end:
///  * quant batched == quant single, BIT-identical, for every batch width,
///    shard split and thread count, with and without per-lane word
///    overlays, for both paper policies (per-sample activation scales +
///    exact int32 accumulation leave this plane no width tolerance at all,
///    conv policies included — unlike the float plane);
///  * the quant forward tracks its float shadow (the same deployed image
///    read as dequantized floats) within the per-layer quantization
///    tolerance;
///  * DeployedWeights::inject_quant is the word-level twin of inject():
///    same RNG stream, same flip sites, dequantizes to the identical float
///    overlay, across BERs and burst shapes;
///  * QuantWeightView reads through a word overlay exactly as if the
///    overlay had been flipped into a materialized int8 image;
///  * the evaluation plane: serial greedy_episode_quant == batched lanes,
///    serial Int8 Trans-1 == batched Int8 Trans-1 at every thread count,
///    and an Int8 clean campaign is thread-count invariant.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/parallel.hpp"
#include "envs/gridworld.hpp"
#include "fault/overlay.hpp"
#include "frl/evaluation.hpp"
#include "frl/policies.hpp"
#include "mitigation/range_detector.hpp"
#include "nn/network.hpp"

namespace frlfi {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 7};
const std::size_t kBatches[] = {1, 2, 3, 5, 8, 16};

// Empirical quantization tolerance of a whole-network forward on the
// deployed image (headroom 2): per-layer activation rounding accumulates
// to well under these bounds on the paper policies' logits (observed max
// ~0.005 on both policies over 20 random inputs; the 10x gate leaves
// margin for seed drift while still catching any kernel or
// scale-plumbing bug, which shows up orders of magnitude larger).
constexpr float kGridworldQuantTol = 0.05f;
constexpr float kDroneQuantTol = 0.05f;

Tensor random_batch(const std::vector<std::size_t>& sample_shape,
                    std::size_t batch, std::uint64_t seed) {
  std::vector<std::size_t> shape{batch};
  shape.insert(shape.end(), sample_shape.begin(), sample_shape.end());
  Rng rng(seed);
  return Tensor::random_uniform(shape, rng, -1.0f, 1.0f);
}

Tensor row_of(const Tensor& batch_tensor, std::size_t b,
              const std::vector<std::size_t>& sample_shape) {
  Tensor s(sample_shape);
  std::memcpy(s.data().data(),
              batch_tensor.data().data() + b * s.size(),
              s.size() * sizeof(float));
  return s;
}

std::uint32_t bits_of(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

// The exactness centerpiece: batched/sharded/overlaid quant forwards all
// reproduce the single-sample quant forward bit-for-bit.
void expect_quant_batched_matches_single(
    Network& policy, const std::vector<std::size_t>& sample_shape,
    const DeployedWeights& deployed, const char* what) {
  const QuantWeightView qview = deployed.quant_view(nullptr);
  FaultSpec strike;
  strike.model = FaultModel::TransientPersistent;
  strike.ber = 0.02;
  for (const std::size_t batch : kBatches) {
    const Tensor x = random_batch(sample_shape, batch, 500 + batch);

    // Clean: no lane views.
    const Tensor clean = policy.forward_batch_quant(x, batch, qview);
    const std::size_t width = clean.size() / batch;
    for (std::size_t b = 0; b < batch; ++b) {
      const Tensor y = policy.forward_quant(row_of(x, b, sample_shape), qview);
      ASSERT_EQ(y.size(), width) << what;
      for (std::size_t i = 0; i < width; ++i)
        ASSERT_EQ(bits_of(clean[b * width + i]), bits_of(y[i]))
            << what << " clean batch " << batch << " row " << b;
    }

    // Per-lane word overlays: every third lane strikes its own corruption.
    std::vector<QuantOverlay> overlays(batch);
    std::vector<QuantWeightView> views;
    views.reserve(batch);
    std::vector<const QuantWeightView*> lanes(batch, nullptr);
    Rng strike_rng(900 + batch);
    for (std::size_t b = 0; b < batch; ++b) {
      if (b % 3 != 1) continue;
      deployed.inject_quant(strike, strike_rng, overlays[b]);
      views.push_back(deployed.quant_view(&overlays[b]));
      lanes[b] = &views.back();
    }
    const Tensor overlaid = policy.forward_batch_quant(x, batch, qview,
                                                       nullptr, lanes);
    for (std::size_t b = 0; b < batch; ++b) {
      const Tensor y = policy.forward_quant(row_of(x, b, sample_shape),
                                            lanes[b] ? *lanes[b] : qview);
      for (std::size_t i = 0; i < width; ++i)
        ASSERT_EQ(bits_of(overlaid[b * width + i]), bits_of(y[i]))
            << what << " overlaid batch " << batch << " row " << b;
    }

    // Sharded across every thread count, with the overlays in place.
    for (const std::size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      const Tensor sharded =
          policy.forward_batch_quant(x, batch, qview, &pool, lanes);
      for (std::size_t i = 0; i < overlaid.size(); ++i)
        ASSERT_EQ(bits_of(sharded[i]), bits_of(overlaid[i]))
            << what << " batch " << batch << " threads " << threads;
    }
  }
}

void expect_quant_tracks_float_shadow(
    Network& policy, const std::vector<std::size_t>& sample_shape,
    const DeployedWeights& deployed, float tol, const char* what) {
  const QuantWeightView qview = deployed.quant_view(nullptr);
  const WeightView fview = deployed.view(nullptr);
  float max_diff = 0.0f;
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const Tensor x = random_batch(sample_shape, 1, 7000 + trial);
    const Tensor sample = row_of(x, 0, sample_shape);
    const Tensor qy = policy.forward_quant(sample, qview);
    const Tensor fy = policy.forward(sample, &fview);
    ASSERT_EQ(qy.shape(), fy.shape()) << what;
    for (std::size_t i = 0; i < qy.size(); ++i)
      max_diff = std::max(max_diff, std::fabs(qy[i] - fy[i]));
  }
  EXPECT_LT(max_diff, tol) << what;
}

TEST(QuantForward, GridworldBatchedMatchesSingleBitExact) {
  Rng init(41);
  Network policy = make_gridworld_policy(init);
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  expect_quant_batched_matches_single(policy, {10}, deployed, "gridworld");
}

TEST(QuantForward, DroneBatchedMatchesSingleBitExact) {
  Rng init(42);
  Network policy = make_drone_policy(init);
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  expect_quant_batched_matches_single(policy, {3, 18, 32}, deployed, "drone");
}

TEST(QuantForward, GridworldTracksFloatShadow) {
  Rng init(43);
  Network policy = make_gridworld_policy(init);
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  expect_quant_tracks_float_shadow(policy, {10}, deployed, kGridworldQuantTol,
                                   "gridworld");
}

TEST(QuantForward, DroneTracksFloatShadow) {
  Rng init(44);
  Network policy = make_drone_policy(init);
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  expect_quant_tracks_float_shadow(policy, {3, 18, 32}, deployed,
                                   kDroneQuantTol, "drone");
}

TEST(QuantForward, CorruptedLanesTrackFloatShadow) {
  // The same strike read on both planes (word overlay vs dequantized
  // float overlay) keeps the two forwards within the clean tolerance:
  // effective weights are bit-identical between planes, so only
  // activation rounding separates them — corruption adds nothing.
  Rng init(45);
  Network policy = make_gridworld_policy(init);
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  FaultSpec spec;
  spec.model = FaultModel::TransientPersistent;
  spec.ber = 0.01;
  Rng rf(77), rq(77);
  WeightOverlay fo;
  QuantOverlay qo;
  deployed.inject(spec, rf, fo);
  deployed.inject_quant(spec, rq, qo);
  const WeightView fview = deployed.view(&fo);
  const QuantWeightView qview = deployed.quant_view(&qo);
  float max_diff = 0.0f;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const Tensor x = random_batch({10}, 1, 8100 + trial);
    const Tensor sample = row_of(x, 0, {10});
    const Tensor qy = policy.forward_quant(sample, qview);
    const Tensor fy = policy.forward(sample, &fview);
    for (std::size_t i = 0; i < qy.size(); ++i)
      max_diff = std::max(max_diff, std::fabs(qy[i] - fy[i]));
  }
  EXPECT_LT(max_diff, kGridworldQuantTol);
}

TEST(QuantOverlayLock, InjectQuantIsWordLevelTwinOfInject) {
  // Same spec, same starting rng state: inject() and inject_quant() must
  // consume the stream identically, hit the same flat indices, and the
  // quant words must dequantize to exactly the float overlay's values.
  Rng init(3);
  Network policy = make_gridworld_policy(init);
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  const double bers[] = {0.0005, 0.01, 0.08};
  const BurstSpec bursts[] = {
      {}, {4, BurstAxis::Row}, {3, BurstAxis::Column}};
  for (const double ber : bers) {
    for (const BurstSpec& burst : bursts) {
      FaultSpec spec;
      spec.model = FaultModel::TransientPersistent;
      spec.ber = ber;
      spec.burst = burst;
      Rng rf(99), rq(99);
      WeightOverlay fo;
      QuantOverlay qo;
      const InjectionReport rep_f = deployed.inject(spec, rf, fo);
      const InjectionReport rep_q = deployed.inject_quant(spec, rq, qo);
      EXPECT_EQ(rep_f.bits_flipped, rep_q.bits_flipped);
      EXPECT_EQ(rep_f.bits_total, rep_q.bits_total);
      ASSERT_EQ(fo.indices, qo.indices)
          << "ber " << ber << " burst " << burst.length;
      for (std::size_t i = 0; i < qo.size(); ++i)
        EXPECT_EQ(bits_of(fo.values[i]),
                  bits_of(static_cast<float>(qo.words[i]) *
                          deployed.int8_scale()))
            << "entry " << i;
      // Both paths left the streams at the same position.
      EXPECT_EQ(rf.uniform_index(1u << 30), rq.uniform_index(1u << 30));
    }
  }
}

TEST(QuantViewLock, OverlayReadsMatchMaterializedFlippedImage) {
  // QuantWeightView::at / span through a word overlay must equal reading
  // an int8 image with the overlay's words written into it — across BERs
  // and burst shapes, for hit and miss windows alike.
  Rng init(5);
  Network policy = make_gridworld_policy(init);
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  const std::size_t params = deployed.size();
  const double bers[] = {0.001, 0.02, 0.1};
  const BurstSpec bursts[] = {
      {}, {5, BurstAxis::Row}, {2, BurstAxis::Column}};
  Rng rng(4242);
  for (const double ber : bers) {
    for (const BurstSpec& burst : bursts) {
      FaultSpec spec;
      spec.model = FaultModel::TransientPersistent;
      spec.ber = ber;
      spec.burst = burst;
      QuantOverlay overlay;
      deployed.inject_quant(spec, rng, overlay);
      std::vector<std::int8_t> flipped = deployed.int8_words();
      overlay.apply_to(flipped);
      const QuantWeightView view = deployed.quant_view(&overlay);
      for (std::size_t i = 0; i < params; ++i)
        ASSERT_EQ(view.at(i), flipped[i]) << "index " << i;
      std::vector<std::int8_t> scratch;
      const std::size_t windows[][2] = {
          {0, params}, {0, 1}, {params - 1, 1}, {params / 3, params / 2}};
      for (const auto& w : windows) {
        const std::int8_t* p = view.span(w[0], w[1], scratch);
        EXPECT_EQ(std::memcmp(p, flipped.data() + w[0], w[1]), 0)
            << "window [" << w[0] << ", +" << w[1] << ")";
      }
    }
  }
}

TEST(QuantEvaluation, BatchedLanesMatchSerialQuantEpisodes) {
  // Lockstep quant lanes == serial greedy_episode_quant per lane,
  // bit-identical stats at every thread count (no width tolerance on this
  // plane even though trajectories chain argmax decisions).
  Rng init(51);
  Network policy = make_gridworld_policy(init);
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  const QuantWeightView qview = deployed.quant_view(nullptr);
  const std::vector<GridLayout> suite = GridLayout::paper_suite();
  GridWorldEnv::Options opts;
  opts.slip_probability = 0.25;
  const std::size_t lanes = 6, max_steps = 40;
  std::vector<EpisodeStats> serial;
  for (std::size_t i = 0; i < lanes; ++i) {
    GridWorldEnv env(suite[i % suite.size()], opts);
    Rng rng = Rng(55).derive_stream({i});
    serial.push_back(greedy_episode_quant(policy, env, rng, max_steps, qview));
  }
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    std::vector<std::unique_ptr<GridWorldEnv>> envs;
    std::vector<Environment*> ptrs;
    std::vector<Rng> rngs;
    for (std::size_t i = 0; i < lanes; ++i) {
      envs.push_back(
          std::make_unique<GridWorldEnv>(suite[i % suite.size()], opts));
      ptrs.push_back(envs.back().get());
      rngs.push_back(Rng(55).derive_stream({i}));
    }
    const std::vector<EpisodeStats> batched = greedy_episodes_batched(
        policy, ptrs, rngs, max_steps, nullptr, &pool, &qview);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < lanes; ++i) {
      EXPECT_EQ(batched[i].steps, serial[i].steps) << "lane " << i;
      EXPECT_EQ(batched[i].success, serial[i].success) << "lane " << i;
      EXPECT_EQ(batched[i].total_reward, serial[i].total_reward)
          << "lane " << i;
    }
  }
}

TEST(QuantEvaluation, Trans1BatchedMatchesSerialInt8) {
  // Int8 Trans-1: the batched runner (per-lane word overlays through
  // forward_batch_quant) reproduces the serial Int8 greedy_episode_trans1
  // bit-for-bit, detector screening included, at every thread count.
  Rng init(52);
  Network policy = make_gridworld_policy(init);
  RangeAnomalyDetector detector(policy, {.margin = 0.10});
  InferenceFaultScenario scenario;
  scenario.spec.model = FaultModel::TransientSingleStep;
  scenario.spec.ber = 0.05;
  scenario.use_int8 = true;
  scenario.mode = InferenceMode::Int8;
  scenario.detector = &detector;
  const DeployedWeights deployed = make_deployed_weights(policy, scenario);
  const std::vector<GridLayout> suite = GridLayout::paper_suite();
  GridWorldEnv::Options opts;
  opts.slip_probability = 0.2;
  const std::size_t lanes = 5, max_steps = 35;
  std::vector<EpisodeStats> serial;
  for (std::size_t i = 0; i < lanes; ++i) {
    GridWorldEnv env(suite[i % suite.size()], opts);
    Rng rng = Rng(66).derive_stream({i});
    serial.push_back(
        greedy_episode_trans1(policy, env, rng, max_steps, scenario));
  }
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    std::vector<std::unique_ptr<GridWorldEnv>> envs;
    std::vector<Environment*> ptrs;
    std::vector<Rng> rngs;
    for (std::size_t i = 0; i < lanes; ++i) {
      envs.push_back(
          std::make_unique<GridWorldEnv>(suite[i % suite.size()], opts));
      ptrs.push_back(envs.back().get());
      rngs.push_back(Rng(66).derive_stream({i}));
    }
    const std::vector<EpisodeStats> batched = greedy_episodes_trans1_batched(
        policy, deployed, scenario, ptrs, rngs, max_steps, &pool);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < lanes; ++i) {
      EXPECT_EQ(batched[i].steps, serial[i].steps)
          << "lane " << i << " threads " << threads;
      EXPECT_EQ(batched[i].success, serial[i].success) << "lane " << i;
      EXPECT_EQ(batched[i].total_reward, serial[i].total_reward)
          << "lane " << i;
    }
  }
}

TEST(QuantEvaluation, Int8CampaignThreadCountInvariant) {
  // A clean campaign on the int8 plane (spec.mode = Int8) is bit-identical
  // for every thread count, like its float twin.
  Rng init(53);
  Network policy = make_gridworld_policy(init);
  const std::vector<GridLayout> suite = GridLayout::paper_suite();
  GridWorldEnv::Options opts;
  opts.slip_probability = 0.3;
  const auto run = [&](std::size_t threads) {
    BatchedCampaignSpec spec;
    spec.episodes = 7;
    spec.agents = 4;
    spec.max_steps = 30;
    spec.seed = 88;
    spec.threads = threads;
    spec.mode = InferenceMode::Int8;
    return run_batched_inference_campaign(
        policy, spec,
        [&](std::size_t a) {
          return std::make_unique<GridWorldEnv>(suite[a % suite.size()], opts);
        },
        [](std::size_t, const Environment&, const EpisodeStats& stats) {
          return static_cast<double>(stats.total_reward) +
                 static_cast<double>(stats.steps);
        });
  };
  const std::vector<double> serial = run(1);
  ASSERT_EQ(serial.size(), 7u * 4u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{7}})
    EXPECT_EQ(run(threads), serial) << "threads " << threads;
}

TEST(QuantDetector, QuantScreenMatchesFloatScreen) {
  // The detector's quant overload must suppress exactly the entries the
  // float overload suppresses on the equivalent float overlay — word 0
  // standing in for 0.0f — with and without the base_hits fast path.
  Rng init(54);
  Network policy = make_gridworld_policy(init);
  RangeAnomalyDetector detector(policy, {.margin = 0.10});
  const DeployedWeights deployed =
      DeployedWeights::int8_image(policy.flat_parameters(), 2.0f);
  const std::vector<std::size_t> base_hits = detector.base_out_of_range(
      std::span<const float>(deployed.base()));
  FaultSpec spec;
  spec.model = FaultModel::TransientPersistent;
  spec.ber = 0.03;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rf(seed), rq(seed);
    WeightOverlay fo;
    QuantOverlay qo;
    deployed.inject(spec, rf, fo);
    deployed.inject_quant(spec, rq, qo);
    QuantOverlay qo_fast = qo;
    const std::size_t nf = detector.scan_and_suppress(
        std::span<const float>(deployed.base()), fo);
    const std::size_t nq = detector.scan_and_suppress(
        std::span<const float>(deployed.base()), deployed.int8_scale(), qo);
    const std::size_t nq_fast = detector.scan_and_suppress(
        std::span<const float>(deployed.base()), deployed.int8_scale(),
        qo_fast, &base_hits);
    EXPECT_EQ(nq, nf);
    EXPECT_EQ(nq_fast, nf);
    ASSERT_EQ(qo.indices, fo.indices);
    EXPECT_EQ(qo_fast.indices, qo.indices);
    EXPECT_EQ(qo_fast.words, qo.words);
    for (std::size_t i = 0; i < qo.size(); ++i)
      EXPECT_EQ(bits_of(static_cast<float>(qo.words[i]) *
                        deployed.int8_scale()),
                bits_of(fo.values[i]))
          << "entry " << i;
  }
}

}  // namespace
}  // namespace frlfi
