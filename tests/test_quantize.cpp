#include "numeric/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(Int8Quantizer, CalibrationMapsMaxTo127) {
  const std::vector<float> data{0.5f, -2.0f, 1.0f};
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  EXPECT_EQ(q.quantize(-2.0f), -127);
  EXPECT_EQ(q.quantize(2.0f), 127);
}

TEST(Int8Quantizer, RoundTripWithinHalfStep) {
  const std::vector<float> data{0.9f, -0.4f, 0.1f, -1.0f};
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  for (float v : data)
    EXPECT_NEAR(q.dequantize(q.quantize(v)), v, q.scale() / 2.0f + 1e-7f);
}

TEST(Int8Quantizer, ClampsBeyondRange) {
  const Int8Quantizer q(0.01f);
  EXPECT_EQ(q.quantize(100.0f), 127);
  EXPECT_EQ(q.quantize(-100.0f), -127);
}

TEST(Int8Quantizer, ZeroIsExact) {
  const Int8Quantizer q(0.033f);
  EXPECT_EQ(q.quantize(0.0f), 0);
  EXPECT_EQ(q.dequantize(0), 0.0f);
}

TEST(Int8Quantizer, AllZeroDataStillHasValidScale) {
  const std::vector<float> zeros(10, 0.0f);
  const Int8Quantizer q = Int8Quantizer::calibrate(zeros);
  EXPECT_GT(q.scale(), 0.0f);
  EXPECT_EQ(q.quantize(0.0f), 0);
}

TEST(Int8Quantizer, BufferInterfacesMatchScalar) {
  const std::vector<float> data{0.3f, -0.7f, 0.0f, 1.5f};
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  const auto qs = q.quantize(data);
  const auto back = q.dequantize(qs);
  ASSERT_EQ(back.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(qs[i], q.quantize(data[i]));
    EXPECT_EQ(back[i], q.dequantize(qs[i]));
  }
}

TEST(Int8Quantizer, InvalidScaleThrows) {
  EXPECT_THROW(Int8Quantizer(0.0f), Error);
  EXPECT_THROW(Int8Quantizer(-1.0f), Error);
  EXPECT_THROW(Int8Quantizer(std::numeric_limits<float>::infinity()), Error);
}

TEST(Int8RoundTrip, ErrorBoundedByScale) {
  std::vector<float> data;
  for (int i = 0; i < 100; ++i)
    data.push_back(std::sin(static_cast<float>(i) * 0.37f) * 2.0f);
  const auto back = int8_roundtrip(data);
  const float step = 2.0f / 127.0f;
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(back[i], data[i], step);
}

// ---- Clamp-asymmetry contract (documented on Int8Quantizer): the fault
// injectors and the int8 kernels' overflow analysis rely on these. ----

TEST(Int8QuantizerContract, CleanImageNeverContainsMinusFullScale) {
  // The clamp floor is -127, not -128: no input — in range, at the
  // calibrated extreme, or arbitrarily far beyond it — quantizes to the
  // word -128. Only a bit flip on a deployed word can produce it.
  std::vector<float> data;
  for (int i = 0; i < 1000; ++i)
    data.push_back(std::sin(static_cast<float>(i) * 0.7f) * 3.0f);
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  for (float v : data) {
    const std::int8_t w = q.quantize(v);
    EXPECT_GE(w, -127);
    EXPECT_LE(w, 127);
  }
  EXPECT_EQ(q.quantize(-3.0f), -127);
  EXPECT_EQ(q.quantize(-1e30f), -127);
  EXPECT_EQ(q.quantize(-std::numeric_limits<float>::infinity()), -127);
}

TEST(Int8QuantizerContract, AllZeroCalibrationUsesEpsilonFloorScale) {
  // An all-zero tensor calibrates to exactly the documented epsilon floor
  // (1e-8 mapped to 127), and the activation-plane calibration shares the
  // identical expression — so an all-zero layer input quantizes to
  // all-zero words with a valid positive scale on both planes.
  const std::vector<float> zeros(16, 0.0f);
  const Int8Quantizer q = Int8Quantizer::calibrate(zeros);
  EXPECT_FLOAT_EQ(q.scale(), 1e-8f / 127.0f);
  EXPECT_FLOAT_EQ(activation_scale(std::span<const float>(zeros)), q.scale());
}

TEST(Int8QuantizerContract, SaturatesExactlyAtCalibratedMax) {
  // ±max|x| maps to exactly ±127, and anything beyond clamps to the same
  // words — saturation, never wraparound.
  const std::vector<float> data{0.25f, -1.75f, 0.5f};
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  EXPECT_EQ(q.quantize(1.75f), 127);
  EXPECT_EQ(q.quantize(-1.75f), -127);
  EXPECT_EQ(q.quantize(17.5f), 127);
  EXPECT_EQ(q.quantize(-17.5f), -127);
}

TEST(Int8QuantizerContract, TiesRoundAwayFromZero) {
  // std::round semantics, pinned so every requantization path (weights at
  // deployment, activations per layer) lands ties on the same word.
  const Int8Quantizer q(1.0f);
  EXPECT_EQ(q.quantize(0.5f), 1);
  EXPECT_EQ(q.quantize(-0.5f), -1);
  EXPECT_EQ(q.quantize(1.5f), 2);
  EXPECT_EQ(q.quantize(-2.5f), -3);
}

TEST(ActivationRequant, InnerHelpersMatchPerSampleScalar) {
  // activation_scales_inner / quantize_activations_inner over a
  // batch-inner (features, B) block must equal per-sample
  // activation_scale + quantize_activations of each gathered column —
  // the property that makes batched quant forwards width-invariant.
  const std::size_t features = 7, batch = 5;
  std::vector<float> x(features * batch);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(static_cast<float>(i) * 1.3f) * 2.5f;
  std::vector<float> scales(batch);
  std::vector<std::int8_t> words(features * batch);
  activation_scales_inner(x.data(), features, batch, scales.data());
  quantize_activations_inner(x.data(), features, batch, scales.data(),
                             words.data());
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<float> col(features);
    for (std::size_t f = 0; f < features; ++f) col[f] = x[f * batch + b];
    const float s = activation_scale(col);
    EXPECT_EQ(scales[b], s);
    std::vector<std::int8_t> colq(features);
    quantize_activations(col, s, colq.data());
    for (std::size_t f = 0; f < features; ++f)
      EXPECT_EQ(words[f * batch + b], colq[f]);
  }
}

/// Property: round-trip error is at most scale/2 for any magnitude scale.
class QuantizeScaleProperty : public ::testing::TestWithParam<float> {};

TEST_P(QuantizeScaleProperty, HalfStepBound) {
  const float magnitude = GetParam();
  std::vector<float> data;
  for (int i = -10; i <= 10; ++i)
    data.push_back(magnitude * static_cast<float>(i) / 10.0f);
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  // Allow a whisker beyond half a step for float rounding at the boundary.
  const float tol = q.scale() / 2.0f * 1.001f + 1e-6f;
  for (float v : data)
    EXPECT_NEAR(q.dequantize(q.quantize(v)), v, tol);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, QuantizeScaleProperty,
                         ::testing::Values(1e-4f, 0.1f, 1.0f, 10.0f, 1e4f));

}  // namespace
}  // namespace frlfi
