#include "numeric/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(Int8Quantizer, CalibrationMapsMaxTo127) {
  const std::vector<float> data{0.5f, -2.0f, 1.0f};
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  EXPECT_EQ(q.quantize(-2.0f), -127);
  EXPECT_EQ(q.quantize(2.0f), 127);
}

TEST(Int8Quantizer, RoundTripWithinHalfStep) {
  const std::vector<float> data{0.9f, -0.4f, 0.1f, -1.0f};
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  for (float v : data)
    EXPECT_NEAR(q.dequantize(q.quantize(v)), v, q.scale() / 2.0f + 1e-7f);
}

TEST(Int8Quantizer, ClampsBeyondRange) {
  const Int8Quantizer q(0.01f);
  EXPECT_EQ(q.quantize(100.0f), 127);
  EXPECT_EQ(q.quantize(-100.0f), -127);
}

TEST(Int8Quantizer, ZeroIsExact) {
  const Int8Quantizer q(0.033f);
  EXPECT_EQ(q.quantize(0.0f), 0);
  EXPECT_EQ(q.dequantize(0), 0.0f);
}

TEST(Int8Quantizer, AllZeroDataStillHasValidScale) {
  const std::vector<float> zeros(10, 0.0f);
  const Int8Quantizer q = Int8Quantizer::calibrate(zeros);
  EXPECT_GT(q.scale(), 0.0f);
  EXPECT_EQ(q.quantize(0.0f), 0);
}

TEST(Int8Quantizer, BufferInterfacesMatchScalar) {
  const std::vector<float> data{0.3f, -0.7f, 0.0f, 1.5f};
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  const auto qs = q.quantize(data);
  const auto back = q.dequantize(qs);
  ASSERT_EQ(back.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(qs[i], q.quantize(data[i]));
    EXPECT_EQ(back[i], q.dequantize(qs[i]));
  }
}

TEST(Int8Quantizer, InvalidScaleThrows) {
  EXPECT_THROW(Int8Quantizer(0.0f), Error);
  EXPECT_THROW(Int8Quantizer(-1.0f), Error);
  EXPECT_THROW(Int8Quantizer(std::numeric_limits<float>::infinity()), Error);
}

TEST(Int8RoundTrip, ErrorBoundedByScale) {
  std::vector<float> data;
  for (int i = 0; i < 100; ++i)
    data.push_back(std::sin(static_cast<float>(i) * 0.37f) * 2.0f);
  const auto back = int8_roundtrip(data);
  const float step = 2.0f / 127.0f;
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(back[i], data[i], step);
}

/// Property: round-trip error is at most scale/2 for any magnitude scale.
class QuantizeScaleProperty : public ::testing::TestWithParam<float> {};

TEST_P(QuantizeScaleProperty, HalfStepBound) {
  const float magnitude = GetParam();
  std::vector<float> data;
  for (int i = -10; i <= 10; ++i)
    data.push_back(magnitude * static_cast<float>(i) / 10.0f);
  const Int8Quantizer q = Int8Quantizer::calibrate(data);
  // Allow a whisker beyond half a step for float rounding at the boundary.
  const float tol = q.scale() / 2.0f * 1.001f + 1e-6f;
  for (float v : data)
    EXPECT_NEAR(q.dequantize(q.quantize(v)), v, tol);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, QuantizeScaleProperty,
                         ::testing::Values(1e-4f, 0.1f, 1.0f, 10.0f, 1e4f));

}  // namespace
}  // namespace frlfi
