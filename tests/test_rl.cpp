#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "rl/qlearner.hpp"
#include "rl/reinforce.hpp"
#include "rl/schedule.hpp"
#include "test_util.hpp"

namespace frlfi {
namespace {

using testing::BanditEnv;
using testing::ChainEnv;

Network tiny_net(Rng& rng, std::size_t in, std::size_t out) {
  Network net;
  net.add(std::make_unique<Dense>(in, 16, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(16, out, rng));
  return net;
}

TEST(EpsilonSchedule, LinearDecayEndpoints) {
  EpsilonSchedule s(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_NEAR(s.at(50), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(s.at(100), 0.1);
  EXPECT_DOUBLE_EQ(s.at(100000), 0.1);
  EXPECT_DOUBLE_EQ(s.terminal(), 0.1);
}

TEST(EpsilonSchedule, RejectsBadRanges) {
  EXPECT_THROW(EpsilonSchedule(0.1, 0.5, 10), Error);  // end > start
  EXPECT_THROW(EpsilonSchedule(1.5, 0.1, 10), Error);
  EXPECT_THROW(EpsilonSchedule(0.5, 0.1, 0), Error);
}

TEST(QLearner, LearnsChainEnv) {
  Rng rng(1);
  Network net = tiny_net(rng, 1, 2);
  QLearner::Options opts;
  opts.learning_rate = 0.05f;
  opts.gamma = 0.9f;
  opts.max_steps = 50;
  QLearner q(net, opts);
  ChainEnv env(5);
  for (int ep = 0; ep < 300; ++ep) {
    Rng er = rng.split(ep);
    q.run_episode(env, er, 0.3, /*learn=*/true);
  }
  Rng ev(99);
  const EpisodeStats stats = q.run_episode(env, ev, 0.0, /*learn=*/false);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.steps, 5u);  // straight to the goal
}

TEST(QLearner, EvalDoesNotChangeWeights) {
  Rng rng(2);
  Network net = tiny_net(rng, 1, 2);
  QLearner q(net, {});
  const std::vector<float> before = net.flat_parameters();
  ChainEnv env(4);
  Rng ev(3);
  q.run_episode(env, ev, 0.5, /*learn=*/false);
  EXPECT_EQ(net.flat_parameters(), before);
}

TEST(QLearner, StepCapReportsFailure) {
  Rng rng(4);
  Network net = tiny_net(rng, 1, 2);
  QLearner::Options opts;
  opts.max_steps = 3;
  QLearner q(net, opts);
  ChainEnv env(100);
  Rng ev(5);
  const EpisodeStats stats = q.run_episode(env, ev, 0.0, false);
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.steps, 3u);
}

TEST(QLearner, GreedyActionIsArgmaxOfNetwork) {
  Rng rng(6);
  Network net = tiny_net(rng, 1, 2);
  QLearner q(net, {});
  const Tensor obs({1}, 0.3f);
  EXPECT_EQ(q.greedy_action(obs), net.forward(obs).argmax());
}

TEST(QLearner, RejectsBadOptions) {
  Rng rng(7);
  Network net = tiny_net(rng, 1, 2);
  QLearner::Options opts;
  opts.gamma = 1.5f;
  EXPECT_THROW(QLearner(net, opts), Error);
}

TEST(Reinforce, LearnsBandit) {
  Rng rng(8);
  Network net = tiny_net(rng, 1, 4);
  ReinforceTrainer::Options opts;
  opts.learning_rate = 0.05f;
  opts.max_steps = 2;
  ReinforceTrainer trainer(net, opts);
  BanditEnv env(4, 2);
  for (int ep = 0; ep < 400; ++ep) {
    Rng er = rng.split(ep);
    trainer.run_episode(env, er, /*learn=*/true);
  }
  EXPECT_EQ(trainer.greedy_action(Tensor({1}, 1.0f)), 2u);
}

TEST(Reinforce, EvalIsGreedyAndPure) {
  Rng rng(9);
  Network net = tiny_net(rng, 1, 3);
  ReinforceTrainer trainer(net, {});
  const std::vector<float> before = net.flat_parameters();
  BanditEnv env(3, 0);
  Rng ev(10);
  const EpisodeStats stats = trainer.run_episode(env, ev, /*learn=*/false);
  EXPECT_EQ(net.flat_parameters(), before);
  EXPECT_EQ(stats.steps, 1u);
}

TEST(Reinforce, RejectsBadOptions) {
  Rng rng(11);
  Network net = tiny_net(rng, 1, 2);
  ReinforceTrainer::Options opts;
  opts.baseline_beta = 1.0f;
  EXPECT_THROW(ReinforceTrainer(net, opts), Error);
}

TEST(Reinforce, LearnsChainPreference) {
  // On the chain, always-right is optimal; after training the greedy
  // action at the start state should be 1 (right).
  Rng rng(12);
  Network net = tiny_net(rng, 1, 2);
  ReinforceTrainer::Options opts;
  opts.learning_rate = 0.02f;
  opts.gamma = 0.95f;
  opts.max_steps = 30;
  ReinforceTrainer trainer(net, opts);
  ChainEnv env(4);
  for (int ep = 0; ep < 500; ++ep) {
    Rng er = rng.split(ep);
    trainer.run_episode(env, er, true);
  }
  EXPECT_EQ(trainer.greedy_action(Tensor({1}, 0.0f)), 1u);
}

}  // namespace
}  // namespace frlfi
