#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace frlfi {
namespace {

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, kN / 10, kN / 10 * 0.15);
}

TEST(Rng, UniformIndexOneAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalScaling) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(31);
  std::vector<double> w{1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0], kN / 4, kN * 0.02);
  EXPECT_NEAR(counts[1], 3 * kN / 4, kN * 0.02);
  EXPECT_EQ(counts[2], 0);
}

TEST(Rng, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(37);
  std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.categorical(w)];
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(Rng, SplitIsIndependentOfStreamPosition) {
  Rng a(99), b(99);
  b.next_u64();
  b.next_u64();
  Rng ca = a.split(5), cb = b.split(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, SplitChildrenDiffer) {
  Rng a(99);
  Rng c0 = a.split(0), c1 = a.split(1);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, DeriveStreamEqualsChainedSplits) {
  // derive_stream must keep the bits of the historical chained-split
  // streams (the per-(salt+agent, trial) evaluation streams depend on it).
  const Rng base(77);
  Rng chained = base.split(11).split(29).split(3);
  Rng derived = base.derive_stream({11, 29, 3});
  for (int i = 0; i < 16; ++i) EXPECT_EQ(derived.next_u64(), chained.next_u64());
  Rng one_a = base.split(5), one_b = base.derive_stream({5});
  EXPECT_EQ(one_a.next_u64(), one_b.next_u64());
}

TEST(Rng, MixTagsIsOrderSensitiveAndMatchesDeriveStream) {
  EXPECT_NE(Rng::mix_tags(42, {1, 2}), Rng::mix_tags(42, {2, 1}));
  EXPECT_NE(Rng::mix_tags(42, {1, 2}), Rng::mix_tags(43, {1, 2}));
  // The tag chain is the same absorption derive_stream seeds from, so two
  // Rngs built over equal mixes agree.
  Rng via_stream = Rng(42).derive_stream({1, 2});
  Rng via_mix(Rng::mix_tags(42, {1, 2}));
  EXPECT_EQ(via_stream.next_u64(), via_mix.next_u64());
}

TEST(Rng, MixTagsAvoidsShiftPackingCollisions) {
  // The old pretraining cache key packed components as
  // seed ^ (a << 32) ^ (b << 44): any (a, b) with a == b' << 12 collides
  // with (0, b + a >> 12)-style pairs, e.g. these two distinct configs.
  const std::uint64_t s = 21;
  const auto old_key = [s](std::uint64_t a, std::uint64_t b) {
    return s ^ (a << 32) ^ (b << 44);
  };
  EXPECT_EQ(old_key(0x1000, 0), old_key(0, 1));  // the collision
  EXPECT_NE(Rng::mix_tags(s, {0x1000, 0}), Rng::mix_tags(s, {0, 1}));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

/// Property sweep: uniform_index never exceeds its bound for many n.
class RngIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngIndexProperty, NeverOutOfRange) {
  Rng rng(GetParam());
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 127ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.uniform_index(n), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngIndexProperty,
                         ::testing::Values(1, 2, 3, 42, 1337, 0xDEADBEEF));

}  // namespace
}  // namespace frlfi
