/// \file test_round_engine.cpp
/// The federated round engine's invariants:
///  * train() is bit-identical across thread counts (1, 2, 7) on both
///    paper systems — faults, noisy channels and mitigation included —
///    over an n_agents x threads grid;
///  * snapshot/restore composes with parallel training (restore + retrain
///    replays the same bits at any fan-out);
///  * the batched server-round kernels (smoothing_average_rows,
///    mean_parameters_rows, CommChannel::transmit_rows,
///    ParameterServer::communicate_rows) are bit-identical to their
///    scalar references, RNG stream position included;
///  * the engine's row-matrix server-fault hook reproduces the historical
///    per-agent-vector hook.

#include "federated/round_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "core/error.hpp"
#include "fault/injector.hpp"
#include "federated/aggregation.hpp"
#include "federated/channel.hpp"
#include "federated/server.hpp"
#include "frl/drone_system.hpp"
#include "frl/gridworld_system.hpp"

namespace frlfi {
namespace {

std::vector<float> random_row(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<std::vector<float>> random_uploads(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  std::vector<std::vector<float>> up;
  for (std::size_t i = 0; i < n; ++i) up.push_back(random_row(dim, seed + i));
  return up;
}

std::vector<float> pack_rows(const std::vector<std::vector<float>>& vov) {
  std::vector<float> rows;
  for (const auto& v : vov) rows.insert(rows.end(), v.begin(), v.end());
  return rows;
}

TEST(BatchedAggregation, SmoothingRowsMatchesScalarReference) {
  for (const std::size_t n : {std::size_t{2}, std::size_t{5}, std::size_t{12}}) {
    // Dims straddling SIMD widths, including a non-multiple-of-8 tail.
    for (const std::size_t dim : {std::size_t{1}, std::size_t{37},
                                  std::size_t{256}}) {
      const auto uploads = random_uploads(n, dim, 100 + n + dim);
      const auto rows = pack_rows(uploads);
      for (const double alpha : {0.3, 0.5, 1.0 / static_cast<double>(n)}) {
        const auto scalar = smoothing_average(uploads, alpha);
        std::vector<float> out(n * dim), total(dim);
        smoothing_average_rows(rows.data(), out.data(), total.data(), n, dim,
                               alpha);
        EXPECT_EQ(out, pack_rows(scalar)) << n << "x" << dim << " a=" << alpha;
      }
    }
  }
}

TEST(BatchedAggregation, MeanRowsMatchesScalarReference) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{9}}) {
    const std::size_t dim = 123;
    const auto uploads = random_uploads(n, dim, 500 + n);
    const auto rows = pack_rows(uploads);
    std::vector<float> mean(dim);
    mean_parameters_rows(rows.data(), n, dim, mean.data());
    EXPECT_EQ(mean, mean_parameters(uploads)) << n;
  }
}

TEST(BatchedChannel, TransmitRowsMatchesScalarTransmit) {
  for (const double ber : {0.0, 1e-3, 0.05, 0.3}) {
    const std::size_t n = 4, dim = 97;
    const auto uploads = random_uploads(n, dim, 900);
    CommChannel scalar_ch(ber), rows_ch(ber);
    Rng scalar_rng(7), rows_rng(7);
    std::vector<std::vector<float>> scalar_out;
    for (const auto& p : uploads)
      scalar_out.push_back(scalar_ch.transmit(p, scalar_rng));
    std::vector<float> rows = pack_rows(uploads);
    rows_ch.transmit_rows(rows.data(), n, dim, rows_rng);
    EXPECT_EQ(rows, pack_rows(scalar_out)) << "ber " << ber;
    EXPECT_EQ(rows_ch.messages_sent(), scalar_ch.messages_sent());
    EXPECT_EQ(rows_ch.bytes_sent(), scalar_ch.bytes_sent());
    EXPECT_EQ(rows_ch.bits_corrupted(), scalar_ch.bits_corrupted());
    // Identical RNG consumption: the streams stay aligned afterwards.
    EXPECT_EQ(rows_rng.next_u64(), scalar_rng.next_u64()) << "ber " << ber;
  }
}

/// Frozen pre-refactor ParameterServer::communicate: the scalar
/// primitives (CommChannel::transmit, smoothing_average, mean_parameters,
/// hook, downlink transmits) composed exactly as the retired
/// implementation. ParameterServer::communicate is a wrapper over
/// communicate_rows now, so a round-level equivalence check must rebuild
/// the reference from these still-independently-pinned pieces — comparing
/// the wrapper against communicate_rows would be a tautology.
std::vector<std::vector<float>> frozen_scalar_round(
    const std::vector<std::vector<float>>& uploads, CommChannel& channel,
    double alpha, Rng& rng, std::vector<float>* consensus_out,
    const std::function<void(std::vector<std::vector<float>>&)>& hook =
        nullptr) {
  std::vector<std::vector<float>> up;
  up.reserve(uploads.size());
  for (const auto& p : uploads) up.push_back(channel.transmit(p, rng));
  std::vector<std::vector<float>> agg = smoothing_average(up, alpha);
  if (consensus_out != nullptr) *consensus_out = mean_parameters(agg);
  if (hook) hook(agg);
  std::vector<std::vector<float>> down;
  down.reserve(agg.size());
  for (const auto& p : agg) down.push_back(channel.transmit(p, rng));
  return down;
}

TEST(BatchedServerRound, CommunicateRowsMatchesFrozenScalarRound) {
  const std::size_t n = 3, dim = 64;
  const auto uploads = random_uploads(n, dim, 1300);
  const AlphaSchedule schedule(n, 0.6, 20.0);
  CommChannel ref_channel(0.01);
  ParameterServer rows_server(n, dim, schedule);
  rows_server.channel().set_bit_error_rate(0.01);
  Rng ref_rng(5), rows_rng(5);
  std::vector<float> ref_consensus;
  const auto down = frozen_scalar_round(uploads, ref_channel,
                                        schedule.at(0), ref_rng,
                                        &ref_consensus);
  std::vector<float> rows = pack_rows(uploads);
  rows_server.communicate_rows(rows, rows_rng);
  EXPECT_EQ(rows, pack_rows(down));
  EXPECT_EQ(rows_server.consensus(), ref_consensus);
  EXPECT_EQ(rows_server.round(), 1u);
  EXPECT_EQ(rows_server.channel().bytes_sent(), ref_channel.bytes_sent());
  EXPECT_EQ(rows_server.channel().bits_corrupted(),
            ref_channel.bits_corrupted());
  EXPECT_EQ(rows_rng.next_u64(), ref_rng.next_u64());
  // And the compatibility wrapper funnels through the same path.
  ParameterServer wrapper_server(n, dim, schedule);
  wrapper_server.channel().set_bit_error_rate(0.01);
  Rng wrapper_rng(5);
  EXPECT_EQ(wrapper_server.communicate(uploads, wrapper_rng), down);
}

TEST(BatchedServerRound, RowsFaultHookMatchesFrozenLegacyHookRound) {
  // The engine's server-fault injection (span-based inject_int8 over the
  // aggregate rows, one RNG stream across all rows) must reproduce the
  // historical vector-of-vectors hook inside the frozen scalar round
  // bit-for-bit — and so must the legacy-hook adapter in
  // communicate_rows.
  const std::size_t n = 4, dim = 80;
  const auto uploads = random_uploads(n, dim, 1700);
  FaultSpec spec;
  spec.ber = 0.05;
  const AlphaSchedule schedule(n, 0.5);
  CommChannel ref_channel(0.0);
  Rng ref_rng(9);
  const auto down = frozen_scalar_round(
      uploads, ref_channel, schedule.at(0), ref_rng, nullptr,
      [&](std::vector<std::vector<float>>& agg) {
        Rng fault_rng(4242);
        for (auto& params : agg) inject_int8(params, spec, fault_rng);
      });

  ParameterServer rows_srv(n, dim, schedule);
  rows_srv.set_post_aggregate_rows_hook(
      [&](std::size_t, std::span<float> rows, std::size_t row_dim) {
        Rng fault_rng(4242);
        for (std::size_t i = 0; i < n; ++i)
          inject_int8(rows.subspan(i * row_dim, row_dim), spec, fault_rng);
      });
  Rng rows_rng(9);
  std::vector<float> rows = pack_rows(uploads);
  rows_srv.communicate_rows(rows, rows_rng);
  EXPECT_EQ(rows, pack_rows(down));

  // Legacy vector-of-vectors hook through the adapter: same bits.
  ParameterServer legacy_srv(n, dim, schedule);
  legacy_srv.set_post_aggregate_hook(
      [&](std::size_t, std::vector<std::vector<float>>& agg) {
        Rng fault_rng(4242);
        for (auto& params : agg) inject_int8(params, spec, fault_rng);
      });
  Rng legacy_rng(9);
  EXPECT_EQ(legacy_srv.communicate(uploads, legacy_rng), down);
}

/// Small-but-busy gridworld configuration: noisy channel so the comm
/// round consumes RNG, plus an eps schedule matching the test scale.
GridWorldFrlSystem::Config grid_config(std::size_t n_agents,
                                       std::size_t threads) {
  GridWorldFrlSystem::Config cfg;
  cfg.n_agents = n_agents;
  cfg.eps_span = 420;
  cfg.channel_ber = 1e-3;
  cfg.threads = threads;
  return cfg;
}

/// All agent parameters of a gridworld system, concatenated.
std::vector<std::vector<float>> grid_params(GridWorldFrlSystem& sys,
                                            std::size_t n) {
  std::vector<std::vector<float>> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(sys.agent_network(i).flat_parameters());
  return out;
}

TEST(RoundEngine, GridWorldTrainIsThreadCountInvariant) {
  // n_agents x threads grid, with a training fault and mitigation active
  // so every engine stage (episodes, injection, comm round, monitor,
  // checkpoint restore) runs under the fan-out.
  for (const std::size_t n_agents : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::vector<float>> serial;
    MitigationStats serial_stats;
    std::size_t serial_bytes = 0;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
      GridWorldFrlSystem sys(grid_config(n_agents, threads), 31);
      TrainingFaultPlan plan;
      plan.active = true;
      plan.spec.site = n_agents == 1 ? FaultSite::ServerFault
                                     : FaultSite::AgentFault;
      plan.spec.ber = 0.02;
      plan.spec.episode = 10;
      sys.set_fault_plan(plan);
      MitigationPlan mit;
      mit.enabled = true;
      mit.detector.drop_percent = 25.0;
      mit.detector.consecutive_episodes = 5;
      mit.detector.warmup_episodes = 3;
      sys.set_mitigation(mit);
      sys.train(40);
      const auto params = grid_params(sys, n_agents);
      if (threads == 1) {
        serial = params;
        serial_stats = sys.mitigation_stats();
        serial_bytes = sys.communication_bytes();
      } else {
        EXPECT_EQ(params, serial) << n_agents << " agents, " << threads
                                  << " threads";
        EXPECT_EQ(sys.mitigation_stats().checkpoints_taken,
                  serial_stats.checkpoints_taken);
        EXPECT_EQ(sys.mitigation_stats().agent_recoveries,
                  serial_stats.agent_recoveries);
        EXPECT_EQ(sys.mitigation_stats().server_recoveries,
                  serial_stats.server_recoveries);
        EXPECT_EQ(sys.communication_bytes(), serial_bytes);
      }
    }
  }
}

/// Cheap fresh-key drone config so the pretraining phase stays small.
DroneFrlSystem::Config drone_config(std::size_t n_drones,
                                    std::size_t threads) {
  DroneFrlSystem::Config cfg;
  cfg.n_drones = n_drones;
  cfg.imitation_episodes = 8;
  cfg.channel_ber = 1e-3;
  cfg.threads = threads;
  return cfg;
}

TEST(RoundEngine, DroneTrainIsThreadCountInvariant) {
  std::vector<std::vector<float>> serial;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    DroneFrlSystem sys(drone_config(3, threads), 57);
    TrainingFaultPlan plan;
    plan.active = true;
    plan.spec.site = FaultSite::ServerFault;
    plan.spec.ber = 1e-2;
    plan.spec.episode = 3;
    sys.set_fault_plan(plan);
    sys.train(8);
    std::vector<std::vector<float>> params;
    for (std::size_t i = 0; i < 3; ++i)
      params.push_back(sys.drone_network(i).flat_parameters());
    if (threads == 1) {
      serial = params;
    } else {
      EXPECT_EQ(params, serial) << threads << " threads";
    }
  }
}

TEST(RoundEngine, SnapshotRestoreComposesWithParallelTraining) {
  // Parallel-trained snapshot == serial-trained snapshot, and restore +
  // retrain replays identically at a different fan-out.
  GridWorldFrlSystem parallel(grid_config(4, 3), 63);
  GridWorldFrlSystem serial(grid_config(4, 1), 63);
  parallel.train(20);
  serial.train(20);
  const auto snap_parallel = parallel.snapshot();
  const auto snap_serial = serial.snapshot();
  EXPECT_EQ(snap_parallel.agent_params, snap_serial.agent_params);
  EXPECT_EQ(snap_parallel.episode, snap_serial.episode);
  EXPECT_EQ(snap_parallel.round, snap_serial.round);

  parallel.train(15);
  const auto direct = grid_params(parallel, 4);
  parallel.restore(snap_parallel);
  EXPECT_EQ(parallel.episode(), 20u);
  parallel.train(15);
  EXPECT_EQ(grid_params(parallel, 4), direct);
  // And the serial twin retrains to the same place.
  serial.train(15);
  EXPECT_EQ(grid_params(serial, 4), direct);
}

TEST(RoundEngine, ValidatesHooksAndConfig) {
  FederatedRoundEngine::Config cfg;
  cfg.n_agents = 2;
  cfg.parameter_dim = 4;
  FederatedRoundEngine::Hooks hooks;  // all empty
  EXPECT_THROW(FederatedRoundEngine(cfg, 1, 2, hooks), Error);
}

/// Synthetic fleet member for the fleet-scale engine tests: flat
/// per-agent parameter rows, an "episode" that nudges one coordinate
/// deterministically — rounds aggregate changing data at zero NN cost, so
/// the tests can afford 10^3-agent fleets.
struct FleetHarness {
  std::size_t n, dim;
  std::vector<float> params;
  FleetHarness(std::size_t n_agents, std::size_t param_dim)
      : n(n_agents), dim(param_dim), params(n_agents * param_dim) {
    Rng wrng(91);
    for (auto& v : params) v = static_cast<float>(wrng.uniform(-0.5, 0.5));
  }
  FederatedRoundEngine::Hooks hooks() {
    FederatedRoundEngine::Hooks h;
    h.run_episode = [this](std::size_t agent, std::size_t episode, Rng&) {
      params[agent * dim] += 1e-3f * static_cast<float>((agent + episode) % 7);
      return 0.0;
    };
    h.gather_params = [this](std::size_t agent, std::span<float> out) {
      std::copy(params.begin() + static_cast<std::ptrdiff_t>(agent * dim),
                params.begin() + static_cast<std::ptrdiff_t>((agent + 1) * dim),
                out.begin());
    };
    h.scatter_params = [this](std::size_t agent, std::span<const float> p) {
      std::copy(p.begin(), p.end(),
                params.begin() + static_cast<std::ptrdiff_t>(agent * dim));
    };
    h.inject_agent = [](std::size_t, const FaultSpec&, Rng&) {};
    return h;
  }
};

/// Stormy Gilbert–Elliott channel: bad-state flips, chunk erasure and
/// reordering all active, so the fleet transmit fan has real work and the
/// burst-plane bit-identity (legacy vs fleet) is exercised, not vacuous.
BurstyChannelConfig stormy_channel() {
  BurstyChannelConfig bursty;
  bursty.active = true;
  bursty.ber_good = 1e-4;
  bursty.ber_bad = 0.05;
  bursty.p_good_to_bad = 0.2;
  bursty.p_bad_to_good = 0.25;
  bursty.erasure_rate = 0.05;
  bursty.reorder_rate = 0.1;
  bursty.chunk_elems = 16;
  return bursty;
}

FederatedRoundEngine::Config fleet_config(std::size_t agents, std::size_t dim,
                                          std::size_t server_threads) {
  FederatedRoundEngine::Config cfg;
  cfg.n_agents = agents;
  cfg.parameter_dim = dim;
  cfg.comm_interval = 1;
  cfg.bursty_channel = stormy_channel();
  cfg.server_threads = server_threads;
  return cfg;
}

/// Everything degraded at once: dropout windows, stragglers, Byzantine
/// senders, L2 screening and a sparse upload cadence.
ParticipationPlan fleet_plan() {
  ParticipationPlan plan;
  plan.active = true;
  plan.dropout_rate = 0.05;
  plan.crash_rounds = 2;
  plan.straggler_rate = 0.1;
  plan.straggler_lag = 2;
  plan.stale_decay = 0.5;
  plan.max_staleness = 4;
  plan.byzantine_agents = {1, 3};
  plan.screening.l2_norm = true;
  plan.screening.l2_factor = 3.0;
  plan.cadence = 4;
  return plan;
}

void expect_stats_equal(const ParticipationStats& got,
                        const ParticipationStats& want) {
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.present, want.present);
  EXPECT_EQ(got.dropped, want.dropped);
  EXPECT_EQ(got.stragglers, want.stragglers);
  EXPECT_EQ(got.byzantine, want.byzantine);
  EXPECT_EQ(got.stale_folded, want.stale_folded);
  EXPECT_EQ(got.stale_discarded, want.stale_discarded);
  EXPECT_EQ(got.screened_out, want.screened_out);
  EXPECT_EQ(got.degenerate_rounds, want.degenerate_rounds);
  EXPECT_EQ(got.upload_attempts, want.upload_attempts);
  EXPECT_EQ(got.uploads_failed, want.uploads_failed);
}

void expect_channels_equal(const FederatedRoundEngine& got,
                           const FederatedRoundEngine& want) {
  const CommChannel& g = got.server()->channel();
  const CommChannel& w = want.server()->channel();
  EXPECT_EQ(g.transmit_seq(), w.transmit_seq());
  EXPECT_EQ(g.messages_sent(), w.messages_sent());
  EXPECT_EQ(g.bytes_sent(), w.bytes_sent());
  EXPECT_EQ(g.bits_corrupted(), w.bits_corrupted());
}

TEST(FleetRound, DegradedRoundIsServerLaneCountInvariant) {
  // The fleet determinism grid: n_agents x server_threads with every
  // degradation active at once. server_threads == 1 is the serial golden
  // path; 2 and 7 lanes must reproduce it bit for bit — parameters,
  // channel sequence numbers/counters and participation stats — and the
  // extra train() leg locks the RNG stream position too.
  const std::size_t dim = 96;
  for (const std::size_t agents : {std::size_t{256}, std::size_t{1024}}) {
    FleetHarness golden(agents, dim);
    FederatedRoundEngine ref(fleet_config(agents, dim, 1), 2024, 0xF1EE7,
                             golden.hooks());
    ref.set_participation_plan(fleet_plan());
    ref.train(6);
    const auto golden_mid = golden.params;
    ref.train(3);  // diverges here if a lane count consumed RNG differently

    for (const std::size_t lanes : {std::size_t{2}, std::size_t{7}}) {
      FleetHarness h(agents, dim);
      FederatedRoundEngine sys(fleet_config(agents, dim, lanes), 2024, 0xF1EE7,
                               h.hooks());
      sys.set_participation_plan(fleet_plan());
      sys.train(6);
      EXPECT_EQ(h.params, golden_mid)
          << agents << " agents, " << lanes << " lanes";
      sys.train(3);
      EXPECT_EQ(h.params, golden.params)
          << agents << " agents, " << lanes << " lanes (continuation)";
      expect_channels_equal(sys, ref);
      expect_stats_equal(sys.participation_stats(), ref.participation_stats());
    }
    // The plan actually degraded something at this seed.
    EXPECT_GT(ref.participation_stats().dropped, 0u);
    EXPECT_GT(ref.participation_stats().stragglers, 0u);
    EXPECT_GT(ref.participation_stats().byzantine, 0u);
  }
}

TEST(FleetRound, CompactDegradedRoundMatchesLegacyFullMatrixBits) {
  // Participant-compaction equivalence: on the burst plane with the retry
  // protocol unarmed, every message is keyed by the same per-sender
  // sequence numbers on both paths, so the O(participants) compact round
  // (server_threads = 1) must be *identical* to the legacy full-matrix
  // round (server_threads = 0) — parameters, channel counters, stats and
  // the staleness buffer included.
  const std::size_t agents = 64, dim = 48;
  FleetHarness legacy_h(agents, dim);
  FederatedRoundEngine legacy(fleet_config(agents, dim, 0), 7, 0xF1EE7,
                              legacy_h.hooks());
  legacy.set_participation_plan(fleet_plan());
  legacy.train(10);

  FleetHarness fleet_h(agents, dim);
  FederatedRoundEngine fleet(fleet_config(agents, dim, 1), 7, 0xF1EE7,
                             fleet_h.hooks());
  fleet.set_participation_plan(fleet_plan());
  fleet.train(10);

  EXPECT_EQ(fleet_h.params, legacy_h.params);
  expect_channels_equal(fleet, legacy);
  expect_stats_equal(fleet.participation_stats(),
                     legacy.participation_stats());
  const auto& lp = legacy.server()->pending_uploads();
  const auto& fp = fleet.server()->pending_uploads();
  ASSERT_EQ(fp.size(), lp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) {
    EXPECT_EQ(fp[i].agent, lp[i].agent);
    EXPECT_EQ(fp[i].deliver_round, lp[i].deliver_round);
    EXPECT_EQ(fp[i].weight, lp[i].weight);
    EXPECT_EQ(fp[i].data, lp[i].data);
  }
}

TEST(FleetRound, PlanFreeFleetRoundMatchesLegacyOnBurstPlane) {
  // Without a participation plan the fleet path runs the synchronous
  // communicate_rows fan; burst-plane bits are per-sequence derived on
  // both paths, so every lane count must match the legacy serial round.
  const std::size_t agents = 32, dim = 40;
  FleetHarness legacy_h(agents, dim);
  FederatedRoundEngine legacy(fleet_config(agents, dim, 0), 19, 0xF1EE7,
                              legacy_h.hooks());
  legacy.train(8);

  for (const std::size_t lanes :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    FleetHarness h(agents, dim);
    FederatedRoundEngine sys(fleet_config(agents, dim, lanes), 19, 0xF1EE7,
                             h.hooks());
    sys.train(8);
    EXPECT_EQ(h.params, legacy_h.params) << lanes << " lanes";
    expect_channels_equal(sys, legacy);
  }
}

TEST(FleetRound, ZeroRetryUploadProtocolKeepsFleetRoundBits) {
  // An enabled-but-zero-retry protocol must stay on the plain fleet plan
  // path byte for byte (the reliable fan only arms with retries > 0).
  const std::size_t agents = 48, dim = 32;
  FleetHarness plain_h(agents, dim);
  FederatedRoundEngine plain(fleet_config(agents, dim, 2), 23, 0xF1EE7,
                             plain_h.hooks());
  plain.set_participation_plan(fleet_plan());
  plain.train(8);

  FleetHarness zr_h(agents, dim);
  FederatedRoundEngine zr(fleet_config(agents, dim, 2), 23, 0xF1EE7,
                          zr_h.hooks());
  ParticipationPlan plan = fleet_plan();
  plan.upload.enabled = true;
  plan.upload.max_retries = 0;
  zr.set_participation_plan(plan);
  zr.train(8);

  EXPECT_EQ(zr_h.params, plain_h.params);
  expect_channels_equal(zr, plain);
  expect_stats_equal(zr.participation_stats(), plain.participation_stats());
}

TEST(FleetRound, RoundBufferMemoryScalesWithParticipants) {
  // The O(participants) acceptance gate: at cadence 8 (~12.5%
  // participation) the fleet engine's retained round buffers must stay
  // under a quarter of the full n x dim matrix, while the legacy path
  // retains the full matrix by construction.
  const std::size_t agents = 1024, dim = 64;
  const std::size_t full_bytes = agents * dim * sizeof(float);
  ParticipationPlan plan = fleet_plan();
  plan.cadence = 8;

  FleetHarness fleet_h(agents, dim);
  FederatedRoundEngine fleet(fleet_config(agents, dim, 1), 41, 0xF1EE7,
                             fleet_h.hooks());
  fleet.set_participation_plan(plan);
  fleet.train(6);
  EXPECT_LT(fleet.round_buffer_bytes(), full_bytes / 4)
      << "compact round buffers must scale with participants";

  FleetHarness legacy_h(agents, dim);
  FederatedRoundEngine legacy(fleet_config(agents, dim, 0), 41, 0xF1EE7,
                              legacy_h.hooks());
  legacy.set_participation_plan(plan);
  legacy.train(6);
  EXPECT_GE(legacy.round_buffer_bytes(), full_bytes);
}

}  // namespace
}  // namespace frlfi
