#include "core/scale.hpp"

#include <gtest/gtest.h>

namespace frlfi {
namespace {

TEST(RunScale, TrialsDividedAndFloored) {
  RunScale& s = RunScale::instance();
  const std::size_t saved = s.divisor();
  s.set_divisor(10);
  EXPECT_EQ(s.trials(1000), 100u);
  EXPECT_EQ(s.trials(5), 1u);   // never below one trial
  EXPECT_EQ(s.trials(0), 1u);
  s.set_divisor(saved);
}

TEST(RunScale, DivisorClampedToOne) {
  RunScale& s = RunScale::instance();
  const std::size_t saved = s.divisor();
  s.set_divisor(0);
  EXPECT_EQ(s.divisor(), 1u);
  EXPECT_EQ(s.trials(42), 42u);
  s.set_divisor(saved);
}

TEST(RunScale, EpisodesHonourFloor) {
  RunScale& s = RunScale::instance();
  const std::size_t saved = s.divisor();
  s.set_divisor(100);
  EXPECT_EQ(s.episodes(1000, 300), 300u);
  s.set_divisor(2);
  EXPECT_EQ(s.episodes(1000, 300), 500u);
  s.set_divisor(saved);
}

TEST(RunScale, ShorthandMatchesInstance) {
  RunScale& s = RunScale::instance();
  const std::size_t saved = s.divisor();
  s.set_divisor(4);
  EXPECT_EQ(scaled_trials(100), 25u);
  s.set_divisor(saved);
}

}  // namespace
}  // namespace frlfi
