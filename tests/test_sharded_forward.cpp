/// \file test_sharded_forward.cpp
/// Multi-core sharded Network::forward_batch: bit-identity vs the serial
/// batched path and vs single-sample forwards, across thread counts and
/// batch sizes, for clean and fault-injected policies — plus the shard
/// planner's kernel-selection invariant and the sharded lockstep runner.
///
/// Contract under test (see Network::forward_batch): the sharded forward
/// is bit-identical to the unsharded batched forward for EVERY pool size,
/// because the batch-inner kernels are width-independent and the planner
/// (batch_shard_count) never moves a sub-batch across the layers'
/// wide-kernel threshold.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "core/parallel.hpp"
#include "envs/gridworld.hpp"
#include "frl/evaluation.hpp"
#include "frl/policies.hpp"
#include "nn/layer.hpp"
#include "nn/network.hpp"

namespace frlfi {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 7};
const std::size_t kBatches[] = {1, 3, 64};

Tensor random_batch(const std::vector<std::size_t>& sample_shape,
                    std::size_t batch, std::uint64_t seed) {
  std::vector<std::size_t> shape{batch};
  shape.insert(shape.end(), sample_shape.begin(), sample_shape.end());
  Rng rng(seed);
  return Tensor::random_uniform(shape, rng, -1.0f, 1.0f);
}

// Bit-pattern equality: NaN-carrying outputs (faulted policies) must match
// bit for bit, which float == cannot express (NaN != NaN).
std::uint32_t bits_of(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

void expect_sharded_matches_serial(Network& net,
                                   const std::vector<std::size_t>& sample_shape,
                                   const char* what) {
  for (const std::size_t batch : kBatches) {
    const Tensor x = random_batch(sample_shape, batch, 100 + batch);
    const Tensor serial = net.forward_batch(x, batch);
    for (const std::size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      const Tensor sharded = net.forward_batch(x, batch, &pool);
      ASSERT_EQ(sharded.shape(), serial.shape()) << what;
      for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(bits_of(sharded[i]), bits_of(serial[i]))
            << what << " batch " << batch << " threads " << threads
            << " elem " << i;
    }
  }
}

TEST(ShardedForward, ShardPlannerAppliesCostModel) {
  // The planner's cost model: every shard must carry at least
  // kBatchShardMinPerShard rows, so small batches stay unsharded (the
  // measured B=16 x 2-thread loss is declined outright) and mid-size
  // batches split onto fewer lanes than the pool offers.
  EXPECT_EQ(batch_shard_count(1, 8), 1u);
  EXPECT_EQ(batch_shard_count(3, 2), 1u);
  EXPECT_EQ(batch_shard_count(7, 16), 1u);
  EXPECT_EQ(batch_shard_count(8, 16), 1u);
  EXPECT_EQ(batch_shard_count(12, 7), 1u);
  // The measured net-loss anchor is declined at any lane count.
  EXPECT_EQ(batch_shard_count(kShardNetLossBatch, kShardNetLossThreads), 1u);
  EXPECT_EQ(batch_shard_count(kShardNetLossBatch, 16), 1u);
  // Just below 2 shards' worth of work stays whole; at 2x it splits.
  EXPECT_EQ(batch_shard_count(2 * kBatchShardMinPerShard - 1, 8), 1u);
  EXPECT_EQ(batch_shard_count(2 * kBatchShardMinPerShard, 8), 2u);
  EXPECT_EQ(batch_shard_count(64, 2), 2u);
  EXPECT_EQ(batch_shard_count(64, 7), 2u);   // cost cap, not lane count
  EXPECT_EQ(batch_shard_count(64, 16), 2u);
  EXPECT_EQ(batch_shard_count(128, 16), 4u);
  EXPECT_EQ(batch_shard_count(256, 4), 4u);  // lane cap binds again
  // The cost cap subsumes the wide-kernel bit-identity cap: no shard of
  // a batch >= kBatchInnerWideKernelMin may drop below it (that would
  // change kernel selection, hence bits).
  for (const std::size_t batch : {3u, 12u, 64u, 65u, 96u, 256u}) {
    for (const std::size_t lanes : {2u, 7u, 16u}) {
      const std::size_t shards = batch_shard_count(batch, lanes);
      for (std::size_t s = 0; s < shards; ++s) {
        std::size_t b, e;
        shard_range(batch, shards, s, b, e);
        if (batch >= kBatchInnerWideKernelMin) {
          EXPECT_GE(e - b, kBatchInnerWideKernelMin)
              << "batch " << batch << " lanes " << lanes << " shard " << s;
        }
        if (shards > 1) {
          EXPECT_GE(e - b, kBatchShardMinPerShard)
              << "batch " << batch << " lanes " << lanes << " shard " << s;
        }
      }
    }
  }
}

TEST(ShardedForward, DronePolicyBitIdentical) {
  Rng rng(1);
  Network net = make_drone_policy(rng);
  expect_sharded_matches_serial(net, {3, 18, 32}, "drone policy");
}

TEST(ShardedForward, GridworldPolicyBitIdentical) {
  Rng rng(2);
  Network net = make_gridworld_policy(rng);
  expect_sharded_matches_serial(net, {10}, "gridworld policy");
}

TEST(ShardedForward, FaultInjectedWeightsBitIdentical) {
  // Corrupted weights (the campaigns' steady state) — including NaN/Inf
  // outliers — must not break shard equivalence: the sharded forward
  // propagates exactly the same corrupted values through every lane.
  Rng rng(3);
  Network net = make_drone_policy(rng);
  std::vector<float> flat = net.flat_parameters();
  for (std::size_t i = 0; i < flat.size(); i += 97)
    flat[i] *= -1024.0f;  // large-magnitude "high-bit flip" outliers
  flat[11] = std::numeric_limits<float>::quiet_NaN();
  flat[201] = std::numeric_limits<float>::infinity();
  flat[401] = -std::numeric_limits<float>::infinity();
  net.set_flat_parameters(flat);
  expect_sharded_matches_serial(net, {3, 18, 32}, "faulted drone policy");
}

TEST(ShardedForward, MatchesSingleSampleForwardsPerRow) {
  // Transitive check pinned directly: sharded rows equal single-sample
  // forwards wherever the batched path itself is exact (the gridworld MLP
  // is bit-exact at every batch size).
  Rng rng(5);
  Network net = make_gridworld_policy(rng);
  const std::size_t batch = 64;
  const Tensor x = random_batch({10}, batch, 6);
  ThreadPool pool(7);
  const Tensor sharded = net.forward_batch(x, batch, &pool);
  const std::size_t out = sharded.size() / batch;
  for (std::size_t b = 0; b < batch; ++b) {
    Tensor sample({10});
    for (std::size_t i = 0; i < 10; ++i) sample[i] = x[b * 10 + i];
    const Tensor y = net.forward(sample);
    ASSERT_EQ(y.size(), out);
    for (std::size_t i = 0; i < out; ++i)
      ASSERT_EQ(sharded[b * out + i], y[i]) << "row " << b << " elem " << i;
  }
}

TEST(ShardedForward, HookSeesEveryLayerOncePerShard) {
  Rng rng(7);
  Network net = make_gridworld_policy(rng);
  const std::size_t batch = 64;
  const Tensor x = random_batch({10}, batch, 8);
  ThreadPool pool(4);
  const std::size_t shards = batch_shard_count(batch, pool.size());
  ASSERT_GT(shards, 1u);
  std::vector<std::atomic<std::size_t>> calls(net.layer_count());
  std::vector<std::atomic<std::size_t>> rows(net.layer_count());
  net.set_activation_hook([&](std::size_t layer, Tensor& act) {
    calls[layer].fetch_add(1);
    // Batch-inner: the innermost dimension is this shard's width.
    rows[layer].fetch_add(act.dim(act.rank() - 1));
  });
  net.forward_batch(x, batch, &pool);
  net.set_activation_hook({});
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    EXPECT_EQ(calls[l].load(), shards) << "layer " << l;
    EXPECT_EQ(rows[l].load(), batch) << "layer " << l;
  }
}

TEST(ShardedForward, LockstepRunnerBitIdenticalAcrossPools) {
  // End-to-end: greedy_episodes_batched with a sharding pool must walk
  // exactly the serial trajectories (sharding cannot flip an argmax).
  Rng prng(9);
  Network policy = make_gridworld_policy(prng);
  const std::vector<GridLayout> suite = GridLayout::paper_suite();
  const auto run = [&](ThreadPool* pool) {
    std::vector<std::unique_ptr<GridWorldEnv>> envs;
    std::vector<Environment*> lanes;
    std::vector<Rng> rngs;
    for (std::size_t i = 0; i < 12; ++i) {
      envs.push_back(
          std::make_unique<GridWorldEnv>(suite[i % suite.size()]));
      lanes.push_back(envs.back().get());
      rngs.emplace_back(Rng(40).split(i));
    }
    return greedy_episodes_batched(policy, lanes, rngs, 60, nullptr, pool);
  };
  const std::vector<EpisodeStats> serial = run(nullptr);
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const std::vector<EpisodeStats> sharded = run(&pool);
    ASSERT_EQ(sharded.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(sharded[i].steps, serial[i].steps) << "lane " << i;
      EXPECT_EQ(sharded[i].total_reward, serial[i].total_reward) << "lane " << i;
      EXPECT_EQ(sharded[i].success, serial[i].success) << "lane " << i;
    }
  }
}

}  // namespace
}  // namespace frlfi
