#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, MeanAndVarianceMatchManual) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MinMaxTracked) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(RunningStats, SingleObservationHasZeroVariance) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 5.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3 + i * 0.01;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.mean(), mean);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.mean(), mean);
  EXPECT_EQ(c.count(), 2u);
}

TEST(Ci95, WidthShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(ci95(small).margin(), ci95(large).margin());
}

TEST(Ci95, CentredOnMean) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(i % 5);
  const ConfidenceInterval ci = ci95(s);
  EXPECT_NEAR((ci.lo + ci.hi) / 2.0, ci.mean, 1e-12);
}

TEST(Wilson95, DegenerateCases) {
  EXPECT_EQ(wilson95(0, 0).mean, 0.0);
  const ConfidenceInterval all = wilson95(100, 100);
  EXPECT_EQ(all.mean, 1.0);
  EXPECT_LT(all.lo, 1.0);   // never certain
  EXPECT_GT(all.lo, 0.9);
  EXPECT_GT(all.hi, 0.99);  // Wilson hi at p=1 is just below 1
  const ConfidenceInterval none = wilson95(0, 100);
  EXPECT_GT(none.hi, 0.0);
  EXPECT_LT(none.lo, 0.01);
}

TEST(Wilson95, ContainsProportion) {
  const ConfidenceInterval ci = wilson95(30, 100);
  EXPECT_LT(ci.lo, 0.3);
  EXPECT_GT(ci.hi, 0.3);
}

TEST(Wilson95, RejectsMoreSuccessesThanTrials) {
  EXPECT_THROW(wilson95(5, 4), Error);
}

TEST(VectorStats, MeanStddev) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_NEAR(stddev_of(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(population_stddev_of(v), std::sqrt(1.25), 1e-12);
}

TEST(VectorStats, EmptyAndSingleton) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(stddev_of({}), 0.0);
  EXPECT_EQ(stddev_of({3.0}), 0.0);
  EXPECT_EQ(population_stddev_of({}), 0.0);
  EXPECT_EQ(population_stddev_of({3.0}), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile_of(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_of(v, 0.5), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile_of({}, 0.5), Error);
  EXPECT_THROW(quantile_of({1.0}, 1.5), Error);
}

/// Property: merging a stream split at any point matches the whole stream.
class MergeSplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergeSplitProperty, AnySplitPointMatches) {
  const int split = GetParam();
  RunningStats a, b, all;
  for (int i = 0; i < 40; ++i) {
    const double x = (i * 37 % 11) - 5.0;
    (i < split ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(SplitPoints, MergeSplitProperty,
                         ::testing::Values(0, 1, 5, 20, 39, 40));

}  // namespace
}  // namespace frlfi
