#include "core/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(Table, RowCountAndCellMismatch) {
  Table t("demo", {"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, FluentRowBuilder) {
  Table t("demo", {"name", "value"});
  t.row().cell("x").num(1.2345, 2);
  t.row().cell("y").num(2.0, 0);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find('y'), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t("", {"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, CellWithoutRowThrows) {
  Table t("", {"a"});
  EXPECT_THROW(t.cell("x"), Error);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(Heatmap, SetAtRoundTrip) {
  Heatmap h("t", "ber", "episode");
  h.set_col_keys({"0", "100"});
  h.set_row_keys({"0.1", "0.2", "0.3"});
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 2u);
  h.set(2, 1, 98.5);
  EXPECT_DOUBLE_EQ(h.at(2, 1), 98.5);
  EXPECT_DOUBLE_EQ(h.at(0, 0), 0.0);
}

TEST(Heatmap, OutOfRangeThrows) {
  Heatmap h("t", "r", "c");
  h.set_col_keys({"a"});
  h.set_row_keys({"x"});
  EXPECT_THROW(h.set(1, 0, 1.0), Error);
  EXPECT_THROW(h.at(0, 1), Error);
}

TEST(Heatmap, PrintContainsKeysAndValues) {
  Heatmap h("map", "ber", "ep");
  h.set_col_keys({"c0", "c1"});
  h.set_row_keys({"r0"});
  h.set(0, 0, 42.0);
  std::ostringstream os;
  h.print(os, 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("r0"), std::string::npos);
  EXPECT_NE(out.find("c1"), std::string::npos);
}

TEST(Heatmap, CsvShape) {
  Heatmap h("", "ber", "ep");
  h.set_col_keys({"0", "1"});
  h.set_row_keys({"a", "b"});
  h.set(1, 0, 7);
  std::ostringstream os;
  h.write_csv(os);
  EXPECT_EQ(os.str(), "ber\\ep,0,1\na,0,0\nb,7,0\n");
}

}  // namespace
}  // namespace frlfi
