#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace frlfi {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ShapeConstruction) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstruction) {
  Tensor t({3}, 2.5f);
  EXPECT_EQ(t.sum(), 7.5f);
}

TEST(Tensor, ZeroDimThrows) { EXPECT_THROW(Tensor({2, 0}), Error); }

TEST(Tensor, FromVector) {
  const Tensor t = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t[2], 3.0f);
}

TEST(Tensor, At2IndexingRowMajor) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_THROW(t.at2(2, 0), Error);
  EXPECT_THROW(Tensor({2}).at2(0, 0), Error);
}

TEST(Tensor, At3IndexingChw) {
  Tensor t({2, 3, 4});
  t.at3(1, 2, 3) = 9.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
  EXPECT_THROW(t.at3(2, 0, 0), Error);
}

TEST(Tensor, At4Indexing) {
  Tensor t({2, 2, 2, 2});
  t.at4(1, 1, 1, 1) = 3.0f;
  EXPECT_EQ(t[15], 3.0f);
}

TEST(Tensor, BoundsCheckedAt) {
  Tensor t({2});
  EXPECT_THROW(t.at(2), Error);
  EXPECT_NO_THROW(t.at(1));
}

TEST(Tensor, ReshapePreservesDataAndChecksCount) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({2, 3});
  EXPECT_EQ(r.at2(1, 0), 4.0f);
  EXPECT_THROW(t.reshaped({4}), Error);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  Tensor b = Tensor::from_vector({10, 20, 30});
  EXPECT_EQ((a + b)[1], 22.0f);
  EXPECT_EQ((b - a)[2], 27.0f);
  EXPECT_EQ((a * 2.0f)[0], 2.0f);
  EXPECT_EQ((3.0f * a)[2], 9.0f);
  a += b;
  EXPECT_EQ(a[0], 11.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a -= b, Error);
  EXPECT_THROW(a.add_scaled(b, 1.0f), Error);
}

TEST(Tensor, AddScaled) {
  Tensor a = Tensor::from_vector({1, 1});
  const Tensor x = Tensor::from_vector({2, 4});
  a.add_scaled(x, 0.5f);
  EXPECT_EQ(a[0], 2.0f);
  EXPECT_EQ(a[1], 3.0f);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_vector({3, -1, 7, 0});
  EXPECT_EQ(t.sum(), 9.0f);
  EXPECT_EQ(t.min(), -1.0f);
  EXPECT_EQ(t.max(), 7.0f);
  EXPECT_EQ(t.argmax(), 2u);
  EXPECT_FLOAT_EQ(t.mean(), 2.25f);
}

TEST(Tensor, ArgmaxTieGoesToLowestIndex) {
  const Tensor t = Tensor::from_vector({5, 5, 5});
  EXPECT_EQ(t.argmax(), 0u);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}).reshaped({2, 2});
  Tensor b = Tensor::from_vector({5, 6, 7, 8}).reshaped({2, 2});
  const Tensor c = Tensor::matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_EQ(c.at2(1, 1), 50.0f);
}

TEST(Tensor, MatmulShapeChecks) {
  Tensor a({2, 3}), bad({2, 2});
  EXPECT_THROW(Tensor::matmul(a, bad), Error);
  EXPECT_THROW(Tensor::matmul(a, Tensor({3})), Error);
}

TEST(Tensor, RandomUniformWithinBounds) {
  Rng rng(1);
  const Tensor t = Tensor::random_uniform({100}, rng, -0.5f, 0.5f);
  EXPECT_GE(t.min(), -0.5f);
  EXPECT_LT(t.max(), 0.5f);
}

TEST(Tensor, RandomNormalRoughMoments) {
  Rng rng(2);
  const Tensor t = Tensor::random_normal({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0f, 0.1f);
}

TEST(Tensor, SaveLoadRoundTrip) {
  Rng rng(3);
  const Tensor t = Tensor::random_uniform({3, 5}, rng, -1.0f, 1.0f);
  std::stringstream ss;
  t.save(ss);
  const Tensor back = Tensor::load(ss);
  EXPECT_TRUE(back.equals(t));
}

TEST(Tensor, LoadRejectsGarbage) {
  std::stringstream ss("not a tensor");
  EXPECT_THROW(Tensor::load(ss), Error);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({3, 18, 32}).shape_string(), "3x18x32");
  EXPECT_EQ(Tensor().shape_string(), "scalar");
}

TEST(Tensor, EqualsChecksShapeAndData) {
  Tensor a = Tensor::from_vector({1, 2});
  Tensor b = Tensor::from_vector({1, 2});
  EXPECT_TRUE(a.equals(b));
  b[1] = 3;
  EXPECT_FALSE(a.equals(b));
  EXPECT_FALSE(a.equals(a.reshaped({2, 1})));
}

}  // namespace
}  // namespace frlfi
