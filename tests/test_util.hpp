#pragma once

/// \file test_util.hpp
/// Miniature deterministic environments for exercising the RL and
/// evaluation machinery without the full navigation stacks.

#include "rl/env.hpp"

namespace frlfi::testing {

/// A length-N chain: state x in [0, N]; action 1 moves right (+1), action
/// 0 moves left (-1, floored at 0). Reaching N is success (+1 reward);
/// every other step costs -0.01. Observation: x/N as a single feature.
class ChainEnv final : public Environment {
 public:
  explicit ChainEnv(std::size_t length = 6) : length_(length) {}

  Tensor reset(Rng& /*rng*/) override {
    pos_ = 0;
    return observe();
  }

  StepResult step(std::size_t action, Rng& /*rng*/) override {
    if (action == 1) {
      ++pos_;
    } else if (pos_ > 0) {
      --pos_;
    }
    StepResult r;
    if (pos_ >= length_) {
      r.reward = 1.0f;
      r.done = true;
      r.success = true;
    } else {
      r.reward = -0.01f;
    }
    r.observation = observe();
    return r;
  }

  std::size_t action_count() const override { return 2; }
  std::vector<std::size_t> observation_shape() const override { return {1}; }

  std::size_t position() const { return pos_; }

 private:
  Tensor observe() const {
    Tensor t({1});
    t[0] = static_cast<float>(pos_) / static_cast<float>(length_);
    return t;
  }
  std::size_t length_;
  std::size_t pos_ = 0;
};

/// A one-step bandit with `arms` actions; pulling arm `best` yields +1,
/// anything else 0. The episode ends after one pull.
class BanditEnv final : public Environment {
 public:
  BanditEnv(std::size_t arms, std::size_t best) : arms_(arms), best_(best) {}

  Tensor reset(Rng& /*rng*/) override { return Tensor({1}, 1.0f); }

  StepResult step(std::size_t action, Rng& /*rng*/) override {
    StepResult r;
    r.reward = action == best_ ? 1.0f : 0.0f;
    r.done = true;
    r.success = action == best_;
    r.observation = Tensor({1}, 1.0f);
    return r;
  }

  std::size_t action_count() const override { return arms_; }
  std::vector<std::size_t> observation_shape() const override { return {1}; }

 private:
  std::size_t arms_, best_;
};

}  // namespace frlfi::testing
