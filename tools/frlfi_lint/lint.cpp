#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace frlfi_lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ------------------------------------------------------------------ scrub --

// Source text with comments and string/char literals blanked to spaces
// (newlines preserved, so offsets and line numbers match the original),
// plus the comment text collected per line for allow() trailer parsing.
struct Scrubbed {
  std::string code;
  std::map<std::size_t, std::string> comments;  // line -> concatenated text
};

std::size_t line_of(const std::vector<std::size_t>& line_starts,
                    std::size_t offset) {
  // line_starts[i] = offset of the first char of line i+1.
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<std::size_t>(it - line_starts.begin());
}

std::vector<std::size_t> index_lines(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') starts.push_back(i + 1);
  return starts;
}

void blank_range(std::string& code, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < code.size(); ++i)
    if (code[i] != '\n') code[i] = ' ';
}

// Comments and literals out of C++ text. Handles //, /*...*/, "...",
// '...', and R"tag(...)tag"; a ' preceded by an identifier char is treated
// as a digit separator, not a char literal.
Scrubbed scrub_cpp(const std::string& text,
                   const std::vector<std::size_t>& line_starts) {
  Scrubbed out;
  out.code = text;
  const std::size_t n = text.size();
  std::size_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments[line_of(line_starts, i)] += text.substr(i + 2, end - i - 2);
      blank_range(out.code, i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      out.comments[line_of(line_starts, i)] += text.substr(i + 2, end - i - 4);
      blank_range(out.code, i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || !is_ident_char(text[i - 1]))) {
      const std::size_t open = text.find('(', i + 2);
      if (open == std::string::npos) break;
      const std::string closer = ")" + text.substr(i + 2, open - i - 2) + "\"";
      std::size_t end = text.find(closer, open + 1);
      end = (end == std::string::npos) ? n : end + closer.size();
      blank_range(out.code, i, end);
      i = end;
    } else if (c == '"' || (c == '\'' && (i == 0 || !is_ident_char(text[i - 1])))) {
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      const std::size_t end = (j < n) ? j + 1 : n;
      blank_range(out.code, i, end);
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

// Comments out of CMake text ('#' to end of line, except inside "...").
// Flag tokens often live inside quoted strings, so strings are KEPT.
Scrubbed scrub_cmake(const std::string& text,
                     const std::vector<std::size_t>& line_starts) {
  Scrubbed out;
  out.code = text;
  const std::size_t n = text.size();
  bool in_string = false;
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\' && i + 1 < n) ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '#') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments[line_of(line_starts, i)] += text.substr(i + 1, end - i - 1);
      blank_range(out.code, i, end);
      i = end;
    }
  }
  return out;
}

// ----------------------------------------------------------- suppressions --

// Parse every `frlfi-lint: allow(R1[, R3...])` trailer out of the
// collected comments: line -> set of waived rule numbers.
std::map<std::size_t, std::set<int>> parse_allows(
    const std::map<std::size_t, std::string>& comments) {
  std::map<std::size_t, std::set<int>> allows;
  for (const auto& [line, text] : comments) {
    std::size_t pos = 0;
    while ((pos = text.find("frlfi-lint:", pos)) != std::string::npos) {
      pos += 11;
      while (pos < text.size() &&
             std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
      if (text.compare(pos, 6, "allow(") != 0) continue;
      pos += 6;
      while (pos < text.size() && text[pos] != ')') {
        if (text[pos] == 'R' && pos + 1 < text.size() &&
            text[pos + 1] >= '1' && text[pos + 1] <= '4') {
          allows[line].insert(text[pos + 1] - '0');
          pos += 2;
        } else {
          ++pos;
        }
      }
    }
  }
  return allows;
}

// -------------------------------------------------------------- token ops --

bool word_at(const std::string& code, std::size_t pos, const std::string& w) {
  if (code.compare(pos, w.size(), w) != 0) return false;
  if (pos > 0 && is_ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + w.size();
  return end >= code.size() || !is_ident_char(code[end]);
}

std::vector<std::size_t> find_words(const std::string& code,
                                    const std::string& w) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(w, pos)) != std::string::npos) {
    if (word_at(code, pos, w)) hits.push_back(pos);
    pos += w.size();
  }
  return hits;
}

std::size_t skip_ws(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos])))
    ++pos;
  return pos;
}

// Last non-whitespace position strictly before pos, or npos.
std::size_t prev_nonspace(const std::string& code, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return pos;
  }
  return std::string::npos;
}

// Matching closer for the opener at `open` ('(', '[', '{', '<'), or npos.
std::size_t match_bracket(const std::string& code, std::size_t open) {
  const char oc = code[open];
  const char cc = oc == '(' ? ')' : oc == '[' ? ']' : oc == '{' ? '}' : '>';
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == oc) ++depth;
    else if (code[i] == cc && --depth == 0) return i;
  }
  return std::string::npos;
}

// Identifier ending at (inclusive) position `end`, or empty.
std::string ident_ending_at(const std::string& code, std::size_t end) {
  if (end == std::string::npos || !is_ident_char(code[end])) return {};
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(code[begin - 1])) --begin;
  if (!is_ident_start(code[begin])) return {};
  return code.substr(begin, end - begin + 1);
}

// ------------------------------------------------------------- rule state --

struct Ctx {
  const std::string& path;
  const std::string& code;
  const std::vector<std::size_t>& line_starts;
  const std::map<std::size_t, std::set<int>>& allows;
  Report& report;

  void emit(int rule, std::size_t offset, std::string message) {
    Finding f;
    f.file = path;
    f.line = line_of(line_starts, offset);
    f.rule = "R" + std::to_string(rule);
    f.message = std::move(message);
    auto it = allows.find(f.line);
    f.suppressed = it != allows.end() && it->second.count(rule) > 0;
    report.findings.push_back(std::move(f));
  }
};

bool path_has_component(const std::string& path, const std::string& comp) {
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t end = path.find('/', pos);
    if (end == std::string::npos) end = path.size();
    if (path.compare(pos, end - pos, comp) == 0) return true;
    pos = end + 1;
  }
  return false;
}

// bench/ and tools/ may read wall clocks: timing harnesses measure, they
// do not decide results.
bool clock_exempt(const std::string& path) {
  return path_has_component(path, "bench") || path_has_component(path, "tools");
}

// --------------------------------------------------------------------- R1 --

bool is_member_access(const std::string& code, std::size_t word_pos) {
  const std::size_t p = prev_nonspace(code, word_pos);
  if (p == std::string::npos) return false;
  return code[p] == '.' ||
         (code[p] == '>' && p > 0 && code[p - 1] == '-');
}

bool followed_by_call(const std::string& code, std::size_t word_end) {
  const std::size_t p = skip_ws(code, word_end);
  return p < code.size() && code[p] == '(';
}

void check_r1(Ctx& ctx) {
  for (std::size_t pos : find_words(ctx.code, "random_device"))
    ctx.emit(1, pos,
             "std::random_device is nondeterministic; expand seeds through "
             "Rng::split()/derive_stream() instead");
  for (const char* fn : {"rand", "srand"})
    for (std::size_t pos : find_words(ctx.code, fn))
      if (followed_by_call(ctx.code, pos + std::string(fn).size()) &&
          !is_member_access(ctx.code, pos))
        ctx.emit(1, pos,
                 std::string(fn) +
                     "() draws from hidden global state; use a seeded Rng "
                     "stream");
  if (clock_exempt(ctx.path)) return;
  for (std::size_t pos : find_words(ctx.code, "time"))
    if (followed_by_call(ctx.code, pos + 4) &&
        !is_member_access(ctx.code, pos))
      ctx.emit(1, pos,
               "time() makes results depend on the wall clock; thread a "
               "seed or simulated time through instead");
  for (const char* clk :
       {"system_clock", "steady_clock", "high_resolution_clock"})
    for (std::size_t pos : find_words(ctx.code, clk))
      ctx.emit(1, pos,
               std::string(clk) +
                   " reads the wall clock; outside bench//tools/ results "
                   "must not depend on time");
}

// --------------------------------------------------------------------- R2 --

const char* const kAdvancingDraws[] = {"uniform", "bernoulli", "normal",
                                       "shuffle", "categorical", "next"};

// Names declared with type Rng anywhere in the file ("Rng x", "Rng& x",
// "const Rng x(..)", "vector<Rng> xs"), merged with a spelling heuristic
// (identifier contains "rng") when queried.
std::set<std::string> collect_rng_names(const std::string& code) {
  std::set<std::string> names;
  for (std::size_t pos : find_words(code, "Rng")) {
    std::size_t p = skip_ws(code, pos + 3);
    if (p < code.size() && code[p] == '>') p = skip_ws(code, p + 1);
    if (p < code.size() && code[p] == '&') p = skip_ws(code, p + 1);
    if (p < code.size() && is_ident_start(code[p])) {
      std::size_t end = p;
      while (end < code.size() && is_ident_char(code[end])) ++end;
      names.insert(code.substr(p, end - p));
    }
  }
  return names;
}

bool name_is_rng_like(const std::string& name,
                      const std::set<std::string>& declared) {
  if (declared.count(name)) return true;
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return lower.find("rng") != std::string::npos;
}

struct Captures {
  bool ref_default = false;
  std::set<std::string> by_ref;
  std::set<std::string> by_value;
};

Captures parse_captures(const std::string& list) {
  Captures caps;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t end = pos;
    int depth = 0;
    while (end < list.size() && (list[end] != ',' || depth > 0)) {
      if (list[end] == '(' || list[end] == '[' || list[end] == '{') ++depth;
      if (list[end] == ')' || list[end] == ']' || list[end] == '}') --depth;
      ++end;
    }
    std::string item = list.substr(pos, end - pos);
    const std::size_t eq = item.find('=');
    const std::size_t first = item.find_first_not_of(" \t\n");
    if (first != std::string::npos) {
      std::string head = item.substr(first, (eq == std::string::npos ? item.size() : eq) - first);
      while (!head.empty() &&
             std::isspace(static_cast<unsigned char>(head.back())))
        head.pop_back();
      if (head == "&") {
        caps.ref_default = true;
      } else if (!head.empty() && head[0] == '&') {
        caps.by_ref.insert(head.substr(1));
      } else if (!head.empty() && head != "=" && head != "this" &&
                 head != "*this") {
        caps.by_value.insert(head);
      }
    }
    pos = end + 1;
  }
  return caps;
}

struct Lambda {
  Captures caps;
  std::string params;       // parameter list text (may be empty)
  std::size_t body_begin = 0;  // offset of '{' in code
  std::size_t body_end = 0;    // offset of matching '}'
};

// Parse the lambda whose introducer '[' is at `open`. Returns false when
// the brackets do not form a lambda we can follow to a body.
bool parse_lambda(const std::string& code, std::size_t open, Lambda& out) {
  const std::size_t close = match_bracket(code, open);
  if (close == std::string::npos) return false;
  out.caps = parse_captures(code.substr(open + 1, close - open - 1));
  std::size_t p = skip_ws(code, close + 1);
  if (p < code.size() && code[p] == '(') {
    const std::size_t pclose = match_bracket(code, p);
    if (pclose == std::string::npos) return false;
    out.params = code.substr(p + 1, pclose - p - 1);
    p = skip_ws(code, pclose + 1);
  }
  // Skip specifiers / trailing return up to the body brace.
  while (p < code.size() && code[p] != '{' && code[p] != ';') ++p;
  if (p >= code.size() || code[p] != '{') return false;
  out.body_begin = p;
  out.body_end = match_bracket(code, p);
  return out.body_end != std::string::npos;
}

// '[' at pos introduces a lambda (vs an array subscript) when nothing
// value-like precedes it and something callable follows the ']'.
bool is_lambda_introducer(const std::string& code, std::size_t pos) {
  const std::size_t p = prev_nonspace(code, pos);
  if (p != std::string::npos &&
      (is_ident_char(code[p]) || code[p] == ']' || code[p] == ')'))
    return false;
  const std::size_t close = match_bracket(code, pos);
  if (close == std::string::npos) return false;
  const std::size_t after = skip_ws(code, close + 1);
  return after < code.size() && (code[after] == '(' || code[after] == '{');
}

// True when `name` is (re)declared inside `scope` — the previous
// non-space token before an occurrence is type-ish: an identifier, '&',
// '*', or a closing template '>'.
bool declared_in(const std::string& scope, const std::string& name) {
  for (std::size_t pos : find_words(scope, name)) {
    const std::size_t p = prev_nonspace(scope, pos);
    if (p == std::string::npos) continue;
    if (is_ident_char(scope[p]) || scope[p] == '&' || scope[p] == '*' ||
        scope[p] == '>')
      return true;
  }
  return false;
}

// Scan one lambda body for advancing draws on captured Rng state.
void check_lambda_draws(Ctx& ctx, const Lambda& lam,
                        const std::set<std::string>& rng_names) {
  const std::string body =
      ctx.code.substr(lam.body_begin, lam.body_end - lam.body_begin + 1);
  for (const char* method : kAdvancingDraws) {
    const std::string stem(method);
    std::vector<std::size_t> stem_hits;
    for (std::size_t pos = body.find(stem); pos != std::string::npos;
         pos = body.find(stem, pos + stem.size())) {
      // Stem match: boundary on the left only, so suffixed forms
      // (uniform_index, uniform_int, next_u64, ...) are caught too.
      if (pos == 0 || !is_ident_char(body[pos - 1])) stem_hits.push_back(pos);
    }
    for (std::size_t mpos : stem_hits) {
      std::size_t mend = mpos + stem.size();
      while (mend < body.size() && is_ident_char(body[mend])) ++mend;
      if (!followed_by_call(body, mend)) continue;
      // Receiver: walk back over '.'/'->' chains and index brackets to
      // the leftmost base identifier.
      std::size_t p = prev_nonspace(body, mpos);
      if (p == std::string::npos) continue;
      if (body[p] == '.') {
        p = prev_nonspace(body, p);
      } else if (body[p] == '>' && p > 0 && body[p - 1] == '-') {
        p = prev_nonspace(body, p - 1);
      } else {
        continue;  // not a member call
      }
      bool chain_rng_like = false;
      std::string base;
      while (p != std::string::npos) {
        while (p != std::string::npos && body[p] == ']') {
          const std::size_t open = body.rfind('[', p);
          if (open == std::string::npos || match_bracket(body, open) != p) {
            p = std::string::npos;
            break;
          }
          p = prev_nonspace(body, open);
        }
        if (p == std::string::npos) break;
        const std::string seg = ident_ending_at(body, p);
        if (seg.empty()) break;  // e.g. make_rng(): call-result receiver
        if (name_is_rng_like(seg, rng_names)) chain_rng_like = true;
        base = seg;
        const std::size_t q = prev_nonspace(body, p - seg.size() + 1);
        if (q != std::string::npos && body[q] == '.') {
          p = prev_nonspace(body, q);
        } else if (q != std::string::npos && body[q] == '>' && q > 0 &&
                   body[q - 1] == '-') {
          p = prev_nonspace(body, q - 1);
        } else {
          break;
        }
      }
      if (base.empty() || !chain_rng_like) continue;
      // Declared fresh inside the body or passed as a parameter: the
      // per-item-stream idiom, not shared state.
      if (declared_in(lam.params, base)) continue;
      if (declared_in(body, base)) continue;
      const bool by_ref = lam.caps.by_ref.count(base) > 0 ||
                          (lam.caps.ref_default &&
                           lam.caps.by_value.count(base) == 0);
      if (!by_ref) continue;
      ctx.emit(2, lam.body_begin + mpos,
               "advancing draw '" + base + "." +
                   body.substr(mpos, mend - mpos) +
                   "()' on reference-captured Rng state inside a "
                   "parallel_for/dispatch_lanes body; derive a per-item "
                   "stream with split()/derive_stream() instead");
    }
  }
}

void check_r2(Ctx& ctx) {
  const std::set<std::string> rng_names = collect_rng_names(ctx.code);
  for (const char* entry : {"parallel_for", "dispatch_lanes"}) {
    for (std::size_t pos : find_words(ctx.code, entry)) {
      std::size_t open = skip_ws(ctx.code, pos + std::string(entry).size());
      if (open >= ctx.code.size() || ctx.code[open] != '(') continue;
      const std::size_t close = match_bracket(ctx.code, open);
      if (close == std::string::npos) continue;

      // Lambdas written inline in the argument list.
      bool saw_lambda = false;
      for (std::size_t i = open + 1; i < close; ++i) {
        if (ctx.code[i] != '[') continue;
        if (!is_lambda_introducer(ctx.code, i)) continue;
        Lambda lam;
        if (!parse_lambda(ctx.code, i, lam) || lam.body_end > close) continue;
        check_lambda_draws(ctx, lam, rng_names);
        saw_lambda = true;
        i = lam.body_end;
      }
      if (saw_lambda) continue;

      // Bare-identifier body argument: resolve `auto body = [...]`
      // declared earlier in the file and scan that lambda.
      std::size_t arg_begin = open + 1;
      int depth = 0;
      for (std::size_t i = open + 1; i <= close; ++i) {
        const char c = ctx.code[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        else if (c == ')' || c == ']' || c == '}') --depth;
        if ((c == ',' && depth == 0) || i == close) {
          std::string arg = ctx.code.substr(arg_begin, i - arg_begin);
          const std::size_t first = arg.find_first_not_of(" \t\n");
          const std::size_t last = arg.find_last_not_of(" \t\n");
          arg = first == std::string::npos
                    ? std::string()
                    : arg.substr(first, last - first + 1);
          arg_begin = i + 1;
          if (arg.empty() || !is_ident_start(arg[0])) continue;
          if (!std::all_of(arg.begin(), arg.end(), is_ident_char)) continue;
          // Nearest preceding `arg = [` declaration.
          std::size_t decl = std::string::npos;
          for (std::size_t cand : find_words(ctx.code, arg)) {
            if (cand >= pos) break;
            std::size_t q = skip_ws(ctx.code, cand + arg.size());
            if (q < ctx.code.size() && ctx.code[q] == '=') {
              q = skip_ws(ctx.code, q + 1);
              if (q < ctx.code.size() && ctx.code[q] == '[') decl = q;
            }
          }
          if (decl == std::string::npos) continue;
          Lambda lam;
          if (parse_lambda(ctx.code, decl, lam))
            check_lambda_draws(ctx, lam, rng_names);
        }
      }
    }
  }
}

// --------------------------------------------------------------------- R3 --

std::set<std::string> collect_unordered_names(const std::string& code) {
  std::set<std::string> names;
  for (const char* type : {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"}) {
    for (std::size_t pos : find_words(code, type)) {
      std::size_t p = skip_ws(code, pos + std::string(type).size());
      if (p < code.size() && code[p] == '<') {
        const std::size_t close = match_bracket(code, p);
        if (close == std::string::npos) continue;
        p = skip_ws(code, close + 1);
      }
      if (p < code.size() && code[p] == '&') p = skip_ws(code, p + 1);
      if (p < code.size() && is_ident_start(code[p])) {
        std::size_t end = p;
        while (end < code.size() && is_ident_char(code[end])) ++end;
        names.insert(code.substr(p, end - p));
      }
    }
  }
  return names;
}

void check_r3(Ctx& ctx) {
  const std::set<std::string> unordered = collect_unordered_names(ctx.code);
  for (std::size_t pos : find_words(ctx.code, "for")) {
    const std::size_t open = skip_ws(ctx.code, pos + 3);
    if (open >= ctx.code.size() || ctx.code[open] != '(') continue;
    const std::size_t close = match_bracket(ctx.code, open);
    if (close == std::string::npos) continue;
    // Range-for separator: ':' at top paren depth that is not '::'.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const char c = ctx.code[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      else if (c == ';' && depth == 0) break;  // classic for
      else if (c == ':' && depth == 0) {
        if (ctx.code[i - 1] == ':' || ctx.code[i + 1] == ':') {
          ++i;  // '::' qualifier
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = ctx.code.substr(colon + 1, close - colon - 1);
    bool hit = range.find("unordered_map") != std::string::npos ||
               range.find("unordered_set") != std::string::npos;
    if (!hit) {
      for (std::size_t i = 0; i < range.size() && !hit; ++i) {
        if (!is_ident_start(range[i]) ||
            (i > 0 && is_ident_char(range[i - 1])))
          continue;
        std::size_t end = i;
        while (end < range.size() && is_ident_char(range[end])) ++end;
        hit = unordered.count(range.substr(i, end - i)) > 0;
        i = end;
      }
    }
    if (hit)
      ctx.emit(3, colon,
               "range-for over an unordered container: iteration order is "
               "unspecified, so order-dependent accumulation is not "
               "reproducible; iterate a sorted view or use an ordered "
               "container");
  }
}

// --------------------------------------------------------------------- R4 --

const char* const kFastMathFlags[] = {
    "-ffast-math",           "-Ofast",
    "-funsafe-math-optimizations", "-fassociative-math",
    "-freciprocal-math",     "-ffp-contract=fast",
    "-menable-unsafe-fp-math"};

bool contains_ci(const std::string& hay, const std::string& needle) {
  auto it = std::search(hay.begin(), hay.end(), needle.begin(), needle.end(),
                        [](char a, char b) {
                          return std::tolower(static_cast<unsigned char>(a)) ==
                                 std::tolower(static_cast<unsigned char>(b));
                        });
  return it != hay.end();
}

void check_r4_cpp(Ctx& ctx, const std::string& original) {
  // Pragmas are located in the scrubbed code (so commented-out ones do
  // not fire), but inspected on the original line (the interesting bits
  // of `optimize("fast-math")` live in a string literal).
  std::size_t pos = 0;
  while ((pos = ctx.code.find("#", pos)) != std::string::npos) {
    const std::size_t directive = skip_ws(ctx.code, pos + 1);
    if (!word_at(ctx.code, directive, "pragma")) {
      ++pos;
      continue;
    }
    std::size_t eol = ctx.code.find('\n', pos);
    if (eol == std::string::npos) eol = ctx.code.size();
    const std::string scrubbed_line = ctx.code.substr(pos, eol - pos);
    const std::string original_line = original.substr(pos, eol - pos);
    if (contains_ci(scrubbed_line, "reduction") &&
        (contains_ci(scrubbed_line, "omp") ||
         contains_ci(scrubbed_line, "simd")))
      ctx.emit(4, pos,
               "reduction-reordering pragma: the reduction-tree shape "
               "(and thus float rounding) follows the vector width, "
               "breaking cross-build bit-identity");
    else if (contains_ci(scrubbed_line, "FP_CONTRACT") &&
             (contains_ci(scrubbed_line, "ON") ||
              contains_ci(scrubbed_line, "FAST")))
      ctx.emit(4, pos,
               "FP_CONTRACT ON fuses a*b+c into FMA, drifting from the "
               "portable baseline rounding");
    else if (contains_ci(original_line, "fast-math") ||
             contains_ci(original_line, "Ofast"))
      ctx.emit(4, pos,
               "fast-math pragma licenses value-changing float "
               "reassociation; campaigns must stay bit-reproducible");
    pos = eol;
  }
}

void check_r4_cmake(Ctx& ctx) {
  for (const char* flag : kFastMathFlags) {
    std::size_t pos = 0;
    while ((pos = ctx.code.find(flag, pos)) != std::string::npos) {
      // Flag token boundary: not part of a longer flag on either side.
      const std::size_t end = pos + std::string(flag).size();
      const bool clean_end = end >= ctx.code.size() ||
                             (!is_ident_char(ctx.code[end]) &&
                              ctx.code[end] != '-' && ctx.code[end] != '=');
      if (clean_end)
        ctx.emit(4, pos,
                 std::string(flag) +
                     " licenses value-changing float reassociation; the "
                     "build must stay bit-reproducible (see the "
                     "-ffp-contract policy in the root CMakeLists)");
      pos = end;
    }
  }
}

// ------------------------------------------------------------------ files --

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("frlfi_lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_cpp_file(const std::string& name) {
  for (const char* ext : {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".ipp"})
    if (has_suffix(name, ext)) return true;
  return false;
}

bool is_cmake_file(const std::string& name) {
  return has_suffix(name, "CMakeLists.txt") || has_suffix(name, ".cmake");
}

}  // namespace

std::size_t Report::active_count() const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (!f.suppressed) ++n;
  return n;
}

std::size_t Report::suppressed_count() const {
  return findings.size() - active_count();
}

void Report::append(const Report& other) {
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
  files_scanned += other.files_scanned;
}

Report lint_cpp_source(const std::string& path, const std::string& text,
                       const Options& opt) {
  Report report;
  report.files_scanned = 1;
  const std::vector<std::size_t> line_starts = index_lines(text);
  const Scrubbed scrub = scrub_cpp(text, line_starts);
  const auto allows = parse_allows(scrub.comments);
  Ctx ctx{path, scrub.code, line_starts, allows, report};
  if (opt.rule_enabled(1)) check_r1(ctx);
  if (opt.rule_enabled(2)) check_r2(ctx);
  if (opt.rule_enabled(3)) check_r3(ctx);
  if (opt.rule_enabled(4)) check_r4_cpp(ctx, text);
  return report;
}

Report lint_cmake_source(const std::string& path, const std::string& text,
                         const Options& opt) {
  Report report;
  report.files_scanned = 1;
  const std::vector<std::size_t> line_starts = index_lines(text);
  const Scrubbed scrub = scrub_cmake(text, line_starts);
  const auto allows = parse_allows(scrub.comments);
  Ctx ctx{path, scrub.code, line_starts, allows, report};
  if (opt.rule_enabled(4)) check_r4_cmake(ctx);
  return report;
}

Report lint_path(const std::string& path, const Options& opt) {
  namespace fs = std::filesystem;
  Report report;
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec) throw std::runtime_error("frlfi_lint: cannot stat " + path);

  std::vector<std::string> files;
  if (fs::is_directory(st)) {
    fs::recursive_directory_iterator it(path, ec), end;
    if (ec) throw std::runtime_error("frlfi_lint: cannot open " + path);
    for (; it != end; ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory()) {
        // Build trees and VCS/metadata dirs are not ours to police.
        if (name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.'))
          it.disable_recursion_pending();
        continue;
      }
      if (is_cpp_file(name) || is_cmake_file(name))
        files.push_back(it->path().generic_string());
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }

  for (const std::string& file : files) {
    const std::string text = read_file(file);
    if (is_cmake_file(file))
      report.append(lint_cmake_source(file, text, opt));
    else
      report.append(lint_cpp_source(file, text, opt));
  }
  return report;
}

}  // namespace frlfi_lint
