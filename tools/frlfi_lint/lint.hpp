#pragma once

// frlfi_lint: determinism-discipline checker for the FRL-FI tree.
//
// The repo's standing invariant is that every fast path is bit-identical
// to a golden reference, RNG stream position included. Runtime tests lock
// the paths that exist today; this tool statically rejects the patterns
// that silently break thread-count invariance before any test notices:
//
//   R1  banned nondeterminism sources: std::random_device, rand()/srand(),
//       time(), and wall clocks (system_clock / steady_clock /
//       high_resolution_clock). Clock and time() use is exempt under
//       bench/ and tools/ (timing harnesses measure, they do not decide
//       results); random_device / rand / srand are banned everywhere.
//   R2  advancing draws (.uniform* / .bernoulli / .next* / .normal /
//       .shuffle / .categorical) on a reference-captured Rng inside a
//       parallel_for / dispatch_lanes lambda body. Lane bodies must
//       derive per-item streams (split() / derive_stream(), both
//       non-advancing) instead of advancing shared generator state whose
//       position would depend on the lane partition.
//   R3  range-for over std::unordered_map / std::unordered_set:
//       iteration order is unspecified, so any accumulation ordered by it
//       is not reproducible across libraries or hash seeds.
//   R4  value-changing float reassociation: -ffast-math-family flags in
//       build files and reduction-reordering pragmas in sources
//       (omp ... reduction, FP_CONTRACT ON, optimize("fast-math"), ...).
//
// Any finding can be waived in place with a trailing comment on the same
// line: `// frlfi-lint: allow(R2) <reason>` (or `# ...` in CMake files;
// several rules: `allow(R1,R3)`). Suppressed findings are still reported
// and counted, they just do not fail the run.
//
// Implementation: token/scope-aware line scanning (comments and string
// literals stripped, lambda capture lists and brace scopes matched) — a
// deliberate non-goal is full C++ parsing; the escape hatch for the rare
// false positive is the allow() trailer, and the companion fixture suite
// (tests/test_lint.cpp) locks both directions. Standalone C++17, no
// dependency on the frlfi library or libclang.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace frlfi_lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;      // "R1".."R4"
  std::string message;
  bool suppressed = false;  // waived by a frlfi-lint: allow(...) trailer
};

struct Options {
  // R1..R4, in order. All on by default.
  bool enabled[4] = {true, true, true, true};
  bool rule_enabled(int rule_1based) const {
    return rule_1based >= 1 && rule_1based <= 4 && enabled[rule_1based - 1];
  }
};

struct Report {
  std::vector<Finding> findings;  // active and suppressed, in file order
  std::size_t files_scanned = 0;

  std::size_t active_count() const;
  std::size_t suppressed_count() const;
  void append(const Report& other);
};

// Lint C++ source text. `path` is used for reporting and for the R1
// bench//tools/ clock exemption.
Report lint_cpp_source(const std::string& path, const std::string& text,
                       const Options& opt);

// Lint CMake source text (R4 + suppression trailers only).
Report lint_cmake_source(const std::string& path, const std::string& text,
                         const Options& opt);

// Lint a file or directory tree (directories walk recursively; *.cpp,
// *.cc, *.cxx, *.hpp, *.h, *.hh, *.ipp are linted as C++, CMakeLists.txt
// and *.cmake as CMake; build*/ and dot-directories are skipped; files
// visit in sorted order so output is deterministic). Throws
// std::runtime_error on IO failure.
Report lint_path(const std::string& path, const Options& opt);

}  // namespace frlfi_lint
