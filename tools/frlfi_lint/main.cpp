// frlfi_lint CLI — see lint.hpp for the rule catalogue.
//
// Usage: frlfi_lint [--rules R1,R2,...] [--quiet] <path>...
// Exit:  0 clean (suppressed findings allowed), 1 active findings,
//        2 usage or IO error.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void print_usage(std::FILE* out) {
  std::fputs(
      "usage: frlfi_lint [options] <file-or-dir>...\n"
      "\n"
      "Statically checks the FRL-FI determinism discipline (see README,\n"
      "'Static analysis & sanitizers'). Directories walk recursively over\n"
      "C++ sources and CMake files; build*/ and dot-dirs are skipped.\n"
      "\n"
      "rules:\n"
      "  R1  banned nondeterminism sources (random_device, rand/srand,\n"
      "      time(), wall clocks; clocks/time() exempt under bench/, tools/)\n"
      "  R2  advancing draw on reference-captured Rng state inside a\n"
      "      parallel_for/dispatch_lanes body (use split()/derive_stream())\n"
      "  R3  range-for over unordered_map/unordered_set (unspecified order)\n"
      "  R4  fast-math flags or reduction-reordering pragmas\n"
      "\n"
      "options:\n"
      "  --rules R1,R3   run only the listed rules\n"
      "  --quiet         print the summary line only\n"
      "  --help          this text\n"
      "\n"
      "suppression: trail the offending line with\n"
      "  // frlfi-lint: allow(R2) <reason>     (# ... in CMake files)\n"
      "Suppressed findings are reported and counted but do not fail the\n"
      "run.\n",
      out);
}

bool parse_rules(const std::string& spec, frlfi_lint::Options& opt) {
  for (bool& e : opt.enabled) e = false;
  bool any = false;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if ((spec[i] == 'R' || spec[i] == 'r') && i + 1 < spec.size() &&
        spec[i + 1] >= '1' && spec[i + 1] <= '4') {
      opt.enabled[spec[i + 1] - '1'] = true;
      any = true;
      ++i;
    } else if (spec[i] != ',' && spec[i] != ' ') {
      return false;
    }
  }
  return any;
}

}  // namespace

int main(int argc, char** argv) {
  frlfi_lint::Options opt;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--rules=", 0) == 0) {
      if (!parse_rules(arg.substr(8), opt)) {
        std::fprintf(stderr, "frlfi_lint: bad rule list '%s'\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--rules" && i + 1 < argc) {
      if (!parse_rules(argv[++i], opt)) {
        std::fprintf(stderr, "frlfi_lint: bad rule list '%s'\n", argv[i]);
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "frlfi_lint: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    print_usage(stderr);
    return 2;
  }

  frlfi_lint::Report report;
  try {
    for (const std::string& path : paths)
      report.append(frlfi_lint::lint_path(path, opt));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const frlfi_lint::Finding& a,
                      const frlfi_lint::Finding& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  if (!quiet) {
    for (const auto& f : report.findings)
      std::printf("%s:%zu: %s%s: %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.suppressed ? " (suppressed)" : "",
                  f.message.c_str());
  }
  std::printf("frlfi_lint: %zu file(s) scanned, %zu finding(s), %zu "
              "suppressed\n",
              report.files_scanned, report.active_count(),
              report.suppressed_count());
  return report.active_count() == 0 ? 0 : 1;
}
